(** The shared k-LSM's block array (paper §4.1 and Listing 2).

    A [t] is published to all threads through a single atomic pointer in
    {!Shared_klsm}; once published it is never mutated (copy-on-write), with
    the benign exception of the [filled] counters inside blocks.  All
    mutating methods ([insert], [consolidate], [calculate_pivots]) may only
    be called on a private snapshot.

    [pivots.(i)] is the index inside block [i] of the first key less than or
    equal to the pivot key — the pivot key being chosen so that the union of
    all pivot ranges contains at most [k + 1] items, all guaranteed to be
    among the [k + 1] smallest keys of the array.  [find_min] picks one of
    them uniformly at random (Listing 2) and additionally honours local
    ordering semantics through the per-block Bloom filters.

    The hot kernels stream the blocks' flat [keys] arrays (see {!Block}),
    and the mutating methods are allocation-free in steady state: a
    {!Scratch} buffer owned by the calling thread replaces the old
    sort-then-fold list pipeline, and [t.blocks] / [t.pivots] are reused in
    place whenever the block count is unchanged (always safe — [t] is a
    private snapshot whose arrays were freshly copied). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Block = Block.Make (B)
  module Bloom = Klsm_primitives.Bloom
  module Xoshiro = Klsm_primitives.Xoshiro

  type 'v t = {
    mutable blocks : 'v Block.t array;  (** dense, strictly decreasing levels *)
    mutable pivots : int array;  (** same length as [blocks] *)
  }

  (** Reusable per-thread buffers for [normalize]/[calculate_pivots].
      Single-owner (live in a {!Shared_klsm.handle}); grown on demand and
      never shrunk.  The [stack] may pin a few stale block pointers between
      calls — bounded by its own length and cleared to live blocks on every
      use, so nothing accumulates. *)
  module Scratch = struct
    type 'v block = 'v Block.t

    type 'v t = {
      mutable stack : 'v block array;  (** merge-cascade stack *)
      mutable cursor : int array;  (** multiway-merge cursors *)
    }

    let create () = { stack = [||]; cursor = [||] }
  end

  let empty () = { blocks = [||]; pivots = [||] }
  let size t = Array.length t.blocks
  let is_empty t = Array.length t.blocks = 0
  let blocks t = t.blocks

  (** Total number of logically-held items (counts items not yet cleaned
      out; the public [size] of the queue is allowed to be off by rho). *)
  let total_filled t =
    Array.fold_left (fun acc b -> acc + Block.filled b) 0 t.blocks

  (** Shallow copy: the snapshot shares the (immutable) blocks. *)
  let copy t = { blocks = Array.copy t.blocks; pivots = Array.copy t.pivots }

  (* Rebuild [t.blocks] from its current blocks plus an optional [extra]
     block, re-establishing strictly decreasing levels by merging collisions
     (exactly the sequential LSM discipline of §3) and dropping empty
     blocks.  Shared entry point of insert/consolidate.  Returns true if
     any merge happened.

     [t.blocks] already carries strictly decreasing levels, so no sort is
     needed: blocks are fed largest-level first, with [extra] slotted in
     before the first block of equal or smaller level (the position the old
     stable sort gave it).  The cascade stack lives in [scratch] when
     provided, making steady-state calls allocation-free. *)
  let normalize ?pool ?scratch ~alive ?extra t =
    let n = Array.length t.blocks in
    if n = 0 && Option.is_none extra then begin
      if Array.length t.blocks <> 0 then t.blocks <- [||];
      if Array.length t.pivots <> 0 then t.pivots <- [||];
      false
    end
    else begin
      let filler =
        if n > 0 then t.blocks.(0)
        else match extra with Some e -> e | None -> assert false
      in
      let cap = n + 1 in
      let stack =
        match scratch with
        | Some s ->
            if Array.length s.Scratch.stack < cap then
              s.Scratch.stack <- Array.make (max 8 cap) filler;
            s.Scratch.stack
        | None -> Array.make cap filler
      in
      let merged = ref false in
      let sp = ref 0 in
      (* Push one block through the cascade: the stack carries strictly
         decreasing levels bottom-to-top; an incoming block at least as
         large as the top merges with it, and the merged block (one level
         up) re-checks against the new top.  A merge can shrink to nothing
         when every input item was dead. *)
      let push b =
        let b = ref (Block.shrink ?pool ~alive b) in
        let placed = ref false in
        while not !placed do
          if Block.is_empty !b then begin
            Block.retire ?pool !b;
            placed := true
          end
          else if !sp > 0 && Block.level stack.(!sp - 1) <= Block.level !b
          then begin
            merged := true;
            let m = Block.merge ?pool ~alive stack.(!sp - 1) !b in
            decr sp;
            b := Block.shrink ?pool ~alive m
          end
          else begin
            stack.(!sp) <- !b;
            incr sp;
            placed := true
          end
        done
      in
      let extra_level =
        match extra with Some e -> Block.level e | None -> min_int
      in
      let extra_pushed = ref (Option.is_none extra) in
      for idx = 0 to n - 1 do
        let b = t.blocks.(idx) in
        if (not !extra_pushed) && extra_level >= Block.level b then begin
          (match extra with Some e -> push e | None -> ());
          extra_pushed := true
        end;
        push b
      done;
      if not !extra_pushed then (
        match extra with Some e -> push e | None -> ());
      (* The stack is largest-level first — exactly the array layout. *)
      let m = !sp in
      if Array.length t.blocks <> m then t.blocks <- Array.make m filler;
      Array.blit stack 0 t.blocks 0 m;
      if Array.length t.pivots <> m then t.pivots <- Array.make m 0
      else Array.fill t.pivots 0 m 0;
      (* Point the scratch tail at a live block so it pins nothing dead. *)
      (match scratch with
      | Some s when m > 0 ->
          Array.fill s.Scratch.stack m (Array.length s.Scratch.stack - m)
            stack.(0)
      | _ -> ());
      !merged
    end

  let block_list t = Array.to_list t.blocks

  (** Smallest stored key across all blocks, counting logically deleted
      items ([max_int] when structurally empty).  Blocks keep keys in
      decreasing order, so each block contributes [keys.(filled - 1)] in
      O(1).  Because deletion is flag-based, this is a {e lower bound} on
      the smallest alive key — the monotone-under-deletion property the
      sharded component's per-stripe min hints rely on
      ({!Sharded_klsm}). *)
  let min_key t =
    let n = size t in
    let best = ref max_int in
    for i = 0 to n - 1 do
      let b = t.blocks.(i) in
      let f = Block.filled b in
      if f > 0 && b.Block.keys.(f - 1) < !best then
        best := b.Block.keys.(f - 1)
    done;
    !best

  (** Insert a block, merging as needed to keep levels strictly
      decreasing. *)
  let insert ?pool ?scratch ~alive t block =
    ignore (normalize ?pool ?scratch ~alive ~extra:block t)

  (** Shrink every block and re-establish the level invariant; [true] iff a
      merge occurred (Listing 2's return value, used to decide whether the
      snapshot must be pushed).

      [changed] (when given) reports whether the block {e set} changed
      physically — any block replaced, merged or dropped.  A consolidation
      that only trimmed dead tails in place (or did nothing) leaves the
      pointers identical; the previous pivots are then still sound (deletion
      only shrinks candidate ranges, and [find_min] falls back to block
      minima when a range empties), so they are restored — [normalize]
      zeroes them unconditionally — and the caller may skip the O(k·size)
      pivot rescan.  Note [changed] is deliberately wider than the return
      value: an in-place dead-tail trim returns [false] from both. *)
  let consolidate ?pool ?scratch ?changed ~alive t =
    B.fault_point "block_array.consolidate";
    let before = size t in
    let before_blocks, before_pivots =
      match changed with
      | Some _ -> (Array.copy t.blocks, Array.copy t.pivots)
      | None -> ([||], [||])
    in
    let merged = normalize ?pool ?scratch ~alive t in
    let structural = merged || size t <> before in
    (match changed with
    | Some r ->
        let phys =
          structural
          || Array.length t.blocks <> Array.length before_blocks
          ||
          let diff = ref false in
          Array.iteri
            (fun i b -> if b != before_blocks.(i) then diff := true)
            t.blocks;
          !diff
        in
        r := phys;
        if not phys then t.pivots <- before_pivots
    | None -> ());
    structural

  (** Replace the block set of a {e private} snapshot wholesale — the batch
      claim ({!Shared_klsm.try_pop_batch}) rebuilds the array with consumed
      runs removed and installs the result here.  Levels must already be
      strictly decreasing.  Pivots are zeroed; the caller recomputes them
      before publishing. *)
  let replace_blocks t blocks =
    t.blocks <- blocks;
    let m = Array.length blocks in
    if Array.length t.pivots <> m then t.pivots <- Array.make m 0
    else Array.fill t.pivots 0 m 0

  (** Recompute [pivots] so the candidate ranges hold the (at most) [k + 1]
      smallest keys: a bounded multiway merge pops the globally smallest
      remaining key [k + 1] times.  O((k+1) * size) with the tiny linear
      "heap" below — [size] is logarithmic, and the call is amortized over
      the ~k items of the batched insert that triggered it.  The inner loop
      reads only the flat [keys] arrays. *)
  let calculate_pivots ?scratch t ~k =
    let n = size t in
    let pivots =
      if Array.length t.pivots = n then t.pivots else Array.make n 0
    in
    let cursor =
      match scratch with
      | Some s ->
          if Array.length s.Scratch.cursor < n then
            s.Scratch.cursor <- Array.make (max 8 n) 0;
          s.Scratch.cursor
      | None -> Array.make (max n 1) 0
    in
    (* cursor.(i): next candidate index in block i, moving upward from the
       minimum (filled - 1) towards 0. *)
    for i = 0 to n - 1 do
      let f = Block.filled t.blocks.(i) in
      cursor.(i) <- f - 1;
      pivots.(i) <- f
    done;
    let remaining = ref (k + 1) in
    let exhausted = ref false in
    while !remaining > 0 && not !exhausted do
      (* Find the block holding the smallest not-yet-selected key. *)
      let best = ref (-1) in
      let best_key = ref max_int in
      for i = 0 to n - 1 do
        if cursor.(i) >= 0 then begin
          let key = t.blocks.(i).Block.keys.(cursor.(i)) in
          if !best = -1 || key < !best_key then begin
            best := i;
            best_key := key
          end
        end
      done;
      B.tick n;
      if !best = -1 then exhausted := true
      else begin
        pivots.(!best) <- cursor.(!best);
        cursor.(!best) <- cursor.(!best) - 1;
        decr remaining
      end
    done;
    t.pivots <- pivots

  (** Listing 2's [find_min]: select uniformly at random among the candidate
      ranges; on a deleted candidate fall back to the minimal item of the
      same block.  [my_tid]/[hasher] implement local ordering semantics: the
      minimum of every block whose Bloom filter may contain the calling
      thread competes with the random choice (§4.1).  Returns a (possibly
      already deleted) item, or [None] if the array holds no items at all —
      exactly the contract {!Shared_klsm.find_min} builds its retry loop
      on. *)
  let find_min ?(local_ordering = true) ~alive ~rng ~my_tid ~hasher t =
    let n = size t in
    if n = 0 then None
    else begin
      (* How many candidates can we choose from? *)
      let total = ref 0 in
      for i = 0 to n - 1 do
        let range = Block.filled t.blocks.(i) - t.pivots.(i) in
        if range > 0 then total := !total + range
      done;
      (* Minimal block-tail item across all blocks; the safety net used
         whenever the pivot ranges are stale (concurrent shrinks can empty
         them under us).  May return a logically deleted item — callers
         consolidate and retry — but returns [None] only when every block
         is structurally empty (filled = 0 everywhere), which implies every
         item was dead, because [filled] is only ever decremented past dead
         items.  Comparisons stream the flat [keys] arrays; the boxed item
         is read once, at the end.

         A block whose payload is mid-fetch on another thread
         ([Block.try_items] = [None]) is skipped on the first pass —
         relaxation lets us answer from elsewhere instead of waiting on
         its disk read.  Only if {e every} candidate is mid-fetch does the
         [~wait] pass block on {!Block.items}: a false "empty" answer is
         not among the liberties the relaxed contract grants. *)
      let rec block_minima_fallback ~wait () =
        let best = ref None in
        let best_key = ref max_int in
        let in_flight = ref false in
        for i = 0 to n - 1 do
          let b = t.blocks.(i) in
          let f = Block.filled b in
          if f > 0 then begin
            let key = b.Block.keys.(f - 1) in
            if Option.is_none !best || key < !best_key then begin
              (* [keys.(f-1)] and [items.(f-1)] are read at the same index,
                 so the pair stays consistent even while [filled] shrinks.
                 [Block.items] is the selection point: this is where a
                 spilled block's payload rehydrates. *)
              match
                if wait then Some (Block.items b) else Block.try_items b
              with
              | Some its ->
                  best := Some its.(f - 1);
                  best_key := key
              | None -> in_flight := true
            end
          end
        done;
        match !best with
        | None when !in_flight -> block_minima_fallback ~wait:true ()
        | r -> r
      in
      let block_minima_fallback () = block_minima_fallback ~wait:false () in
      let random_choice =
        if !total <= 0 then block_minima_fallback ()
        else begin
          let r = ref (Xoshiro.int rng !total) in
          let chosen = ref None in
          let i = ref 0 in
          while Option.is_none !chosen && !i < n do
            let b = t.blocks.(!i) in
            let filled = Block.filled b in
            let range = filled - t.pivots.(!i) in
            if range > 0 && !r < range then begin
              (* Selection reads the boxed items — the one place the random
                 candidate path faults a spilled payload in.  A payload
                 mid-fetch on another thread is skipped (relaxation:
                 answer from the next candidate instead of waiting on a
                 disk read); the fallback below waits only if every block
                 is in that state. *)
              match Block.try_items b with
              | Some its ->
                  let direct =
                    if !r <> range - 1 then its.(t.pivots.(!i) + !r)
                    else its.(filled - 1)
                  in
                  let item =
                    if alive direct then direct
                    else begin
                      (* Fall back to the minimal {e alive} item within the
                         candidate range, truncating the dead tail on the
                         way (the same benign [filled] shrink [peek_min]
                         performs for the local-ordering path).  This
                         matters most for rehydrated spilled blocks, whose
                         empty Bloom filter keeps them off that path:
                         without the shrink every delete-min against such a
                         block re-selects its taken minimum and pays a full
                         consolidation.  The scan must not leave
                         [pivots.(i)..filled-1]: the pivots bound the
                         candidate set to the globally k-smallest tail, and
                         selecting an item above the cutoff would break the
                         rank guarantee.  A range with no alive item
                         returns the dead item so the caller's
                         consolidation still fires. *)
                      let lo = t.pivots.(!i) in
                      let rec scan j =
                        if j < lo then direct
                        else if alive its.(j) then begin
                          if j < filled - 1 then B.set b.Block.filled (j + 1);
                          its.(j)
                        end
                        else scan (j - 1)
                      in
                      scan (filled - 1)
                    end
                  in
                  chosen := Some item
              | None ->
                  r := 0;
                  incr i
            end
            else begin
              if range > 0 then r := !r - range;
              incr i
            end
          done;
          (* The ranges observed by the selection loop may have shrunk
             since [total] was computed (concurrent deleters advance
             [filled]); a fruitless walk is NOT emptiness. *)
          match !chosen with Some _ as c -> c | None -> block_minima_fallback ()
        end
      in
      (* Local ordering: consider the minimum of every block that may hold
         one of my own items.  The running best's key is tracked as a raw
         int so the loop never compares options structurally. *)
      let best = ref random_choice in
      let best_key =
        ref (match random_choice with Some it -> Item.key it | None -> max_int)
      in
      for i = 0 to n - 1 do
        let b = t.blocks.(i) in
        if local_ordering && Bloom.may_contain ~hasher (Block.filter b) my_tid
        then begin
          match Block.peek_min ~alive b with
          | None -> ()
          | Some it ->
              let key = Item.key it in
              if Option.is_none !best || key < !best_key then begin
                best := Some it;
                best_key := key
              end
        end
      done;
      !best
    end

  (** Invariant checks for tests: strictly decreasing levels, per-block
      invariants, pivot ranges within bounds. *)
  let check_invariants t =
    let n = size t in
    if Array.length t.pivots <> n then failwith "Block_array: pivots length";
    for i = 0 to n - 1 do
      Block.check_invariants t.blocks.(i);
      if Block.is_empty t.blocks.(i) then failwith "Block_array: empty block";
      if i > 0 && Block.level t.blocks.(i - 1) <= Block.level t.blocks.(i)
      then failwith "Block_array: levels not strictly decreasing";
      if t.pivots.(i) < 0 || t.pivots.(i) > Block.filled t.blocks.(i) then
        failwith "Block_array: pivot out of range"
    done
end
