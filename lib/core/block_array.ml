(** The shared k-LSM's block array (paper §4.1 and Listing 2).

    A [t] is published to all threads through a single atomic pointer in
    {!Shared_klsm}; once published it is never mutated (copy-on-write), with
    the benign exception of the [filled] counters inside blocks.  All
    mutating methods ([insert], [consolidate], [calculate_pivots]) may only
    be called on a private snapshot.

    [pivots.(i)] is the index inside block [i] of the first key less than or
    equal to the pivot key — the pivot key being chosen so that the union of
    all pivot ranges contains at most [k + 1] items, all guaranteed to be
    among the [k + 1] smallest keys of the array.  [find_min] picks one of
    them uniformly at random (Listing 2) and additionally honours local
    ordering semantics through the per-block Bloom filters. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Block = Block.Make (B)
  module Bloom = Klsm_primitives.Bloom
  module Xoshiro = Klsm_primitives.Xoshiro

  type 'v t = {
    mutable blocks : 'v Block.t array;  (** dense, strictly decreasing levels *)
    mutable pivots : int array;  (** same length as [blocks] *)
  }

  let empty () = { blocks = [||]; pivots = [||] }
  let size t = Array.length t.blocks
  let is_empty t = Array.length t.blocks = 0
  let blocks t = t.blocks

  (** Total number of logically-held items (counts items not yet cleaned
      out; the public [size] of the queue is allowed to be off by rho). *)
  let total_filled t =
    Array.fold_left (fun acc b -> acc + Block.filled b) 0 t.blocks

  (** Shallow copy: the snapshot shares the (immutable) blocks. *)
  let copy t = { blocks = Array.copy t.blocks; pivots = Array.copy t.pivots }

  (* Rebuild [t.blocks] from an arbitrary list of blocks, re-establishing
     strictly decreasing levels by merging collisions (exactly the
     sequential LSM discipline of §3) and dropping empty blocks.  Shared
     entry point of insert/consolidate.  Returns true if any merge
     happened. *)
  let normalize ~alive t block_list =
    let merged = ref false in
    (* Feed largest level first; the stack (head = smallest level so far)
       then carries strictly decreasing levels bottom-to-top.  An incoming
       block at least as large as the top merges with it, and the merged
       block (one level up) re-checks against the new top. *)
    let ordered =
      List.stable_sort
        (fun a b -> compare (Block.level b) (Block.level a))
        block_list
    in
    let rec go stack b =
      (* A merge can shrink to nothing when every input item was dead. *)
      if Block.is_empty b then stack
      else
        match stack with
        | top :: rest when Block.level top <= Block.level b ->
            merged := true;
            go rest (Block.shrink ~alive (Block.merge ~alive top b))
        | _ -> b :: stack
    in
    let push stack b = go stack (Block.shrink ~alive b) in
    let stack = List.fold_left push [] ordered in
    (* [stack] is smallest-first; the array wants largest-first. *)
    let arr = Array.of_list (List.rev stack) in
    t.blocks <- arr;
    t.pivots <- Array.make (Array.length arr) 0;
    !merged

  let block_list t = Array.to_list t.blocks

  (** Insert a block, merging as needed to keep levels strictly
      decreasing. *)
  let insert ~alive t block = ignore (normalize ~alive t (block :: block_list t))

  (** Shrink every block and re-establish the level invariant; [true] iff a
      merge occurred (Listing 2's return value, used to decide whether the
      snapshot must be pushed). *)
  let consolidate ~alive t =
    B.fault_point "block_array.consolidate";
    let before = size t in
    let merged = normalize ~alive t (block_list t) in
    merged || size t <> before

  (** Recompute [pivots] so the candidate ranges hold the (at most) [k + 1]
      smallest keys: a bounded multiway merge pops the globally smallest
      remaining key [k + 1] times.  O((k+1) * size) with the tiny linear
      "heap" below — [size] is logarithmic, and the call is amortized over
      the ~k items of the batched insert that triggered it. *)
  let calculate_pivots t ~k =
    let n = size t in
    let pivots = Array.make n 0 in
    (* cursor.(i): next candidate index in block i, moving upward from the
       minimum (filled - 1) towards 0. *)
    let cursor = Array.init n (fun i -> Block.filled t.blocks.(i) - 1) in
    for i = 0 to n - 1 do
      pivots.(i) <- Block.filled t.blocks.(i)
    done;
    let remaining = ref (k + 1) in
    let exhausted = ref false in
    while !remaining > 0 && not !exhausted do
      (* Find the block holding the smallest not-yet-selected key. *)
      let best = ref (-1) in
      let best_key = ref max_int in
      for i = 0 to n - 1 do
        if cursor.(i) >= 0 then begin
          let key = Item.key t.blocks.(i).Block.items.(cursor.(i)) in
          if !best = -1 || key < !best_key then begin
            best := i;
            best_key := key
          end
        end
      done;
      B.tick n;
      if !best = -1 then exhausted := true
      else begin
        pivots.(!best) <- cursor.(!best);
        cursor.(!best) <- cursor.(!best) - 1;
        decr remaining
      end
    done;
    t.pivots <- pivots

  (** Listing 2's [find_min]: select uniformly at random among the candidate
      ranges; on a deleted candidate fall back to the minimal item of the
      same block.  [my_tid]/[hasher] implement local ordering semantics: the
      minimum of every block whose Bloom filter may contain the calling
      thread competes with the random choice (§4.1).  Returns a (possibly
      already deleted) item, or [None] if the array holds no items at all —
      exactly the contract {!Shared_klsm.find_min} builds its retry loop
      on. *)
  let find_min ?(local_ordering = true) ~alive ~rng ~my_tid ~hasher t =
    let n = size t in
    if n = 0 then None
    else begin
      (* How many candidates can we choose from? *)
      let total = ref 0 in
      for i = 0 to n - 1 do
        let range = Block.filled t.blocks.(i) - t.pivots.(i) in
        if range > 0 then total := !total + range
      done;
      (* Minimal block-tail item across all blocks; the safety net used
         whenever the pivot ranges are stale (concurrent shrinks can empty
         them under us).  May return a logically deleted item — callers
         consolidate and retry — but returns [None] only when every block
         is structurally empty (filled = 0 everywhere), which implies every
         item was dead, because [filled] is only ever decremented past dead
         items. *)
      let block_minima_fallback () =
        let best = ref None in
        for i = 0 to n - 1 do
          match Block.last_item t.blocks.(i) with
          | None -> ()
          | Some it -> (
              match !best with
              | Some b when Item.key b <= Item.key it -> ()
              | _ -> best := Some it)
        done;
        !best
      in
      let random_choice =
        if !total <= 0 then block_minima_fallback ()
        else begin
          let r = ref (Xoshiro.int rng !total) in
          let chosen = ref None in
          let i = ref 0 in
          while !chosen = None && !i < n do
            let b = t.blocks.(!i) in
            let filled = Block.filled b in
            let range = filled - t.pivots.(!i) in
            if range > 0 && !r < range then begin
              let item =
                if !r <> range - 1 then begin
                  let it = b.Block.items.(t.pivots.(!i) + !r) in
                  if alive it then it
                  else
                    (* Fall back to the minimal element in this block. *)
                    b.Block.items.(filled - 1)
                end
                else b.Block.items.(filled - 1)
              in
              chosen := Some item
            end
            else begin
              if range > 0 then r := !r - range;
              incr i
            end
          done;
          (* The ranges observed by the selection loop may have shrunk
             since [total] was computed (concurrent deleters advance
             [filled]); a fruitless walk is NOT emptiness. *)
          match !chosen with Some _ as c -> c | None -> block_minima_fallback ()
        end
      in
      (* Local ordering: consider the minimum of every block that may hold
         one of my own items. *)
      let best = ref random_choice in
      for i = 0 to n - 1 do
        let b = t.blocks.(i) in
        if local_ordering && Bloom.may_contain ~hasher (Block.filter b) my_tid
        then begin
          match Block.peek_min ~alive b with
          | None -> ()
          | Some it -> (
              match !best with
              | Some cur when Item.key cur <= Item.key it -> ()
              | _ -> best := Some it)
        end
      done;
      !best
    end

  (** Invariant checks for tests: strictly decreasing levels, per-block
      invariants, pivot ranges within bounds. *)
  let check_invariants t =
    let n = size t in
    if Array.length t.pivots <> n then failwith "Block_array: pivots length";
    for i = 0 to n - 1 do
      Block.check_invariants t.blocks.(i);
      if Block.is_empty t.blocks.(i) then failwith "Block_array: empty block";
      if i > 0 && Block.level t.blocks.(i - 1) <= Block.level t.blocks.(i)
      then failwith "Block_array: levels not strictly decreasing";
      if t.pivots.(i) < 0 || t.pivots.(i) > Block.filled t.blocks.(i) then
        failwith "Block_array: pivot out of range"
    done
end
