(** Blocks: sorted arrays of item pointers (paper §3 and Listing 1).

    A block of level [l] physically holds [2^l] slots and logically holds
    [filled <= 2^l] items sorted in {e decreasing} key order, so the minimal
    key sits at index [filled - 1] and is readable in O(1).  Blocks are
    written only by the thread that creates them and become immutable upon
    publication, with the single exception of [filled], which [shrink] may
    decrement; that race is benign (a stale, larger [filled] merely makes a
    reader inspect items that are already logically deleted — see §4.1).

    {b Structure of arrays}: alongside the boxed [items], every block keeps
    a contiguous unboxed [keys] array with [keys.(i) = Item.key items.(i)]
    for all [i < filled].  The merge/pivot/find-min kernels — the paper's
    memory-bandwidth-bound hot paths (§5) — compare raw ints streamed from
    [keys] and touch the boxed item only on final selection.  [keys] slots
    below [filled] are written before publication and never after, so they
    are safe to read without synchronization even while [filled] shrinks.

    {b Memory reuse} (paper §4.4, adapted to OCaml): a block is [Private]
    while under construction, [Published] once any other thread may reach
    it (a DistLSM slot, a shared snapshot, a CAS attempt), and [Retired]
    once its owner has handed its arrays back to its thread-local {!Pool}.
    Only [Private] blocks are ever retired — a published block's arrays can
    be pinned by spies and snapshot readers indefinitely, and for those we
    keep relying on the GC exactly as §4.4's remark permits.  Merge-cascade
    intermediates, which dominate allocation on the insert path, never get
    published and are recycled at once.

    Every mutating operation filters out items that are no longer [alive]
    (logically deleted, or condemned by the application's lazy-deletion
    predicate of §4.5).

    The [filter] is the Bloom filter of contributing thread ids used for
    local ordering semantics (§4.1); it is only ever updated before a block
    is published, so it needs no synchronization.

    {b Payload residency} (lib/store; docs/STORAGE.md): a block's boxed
    items are either [Resident] (an in-RAM array, the default) or [Spilled]
    (on disk in the content-addressed store, rehydrated on first selection
    and memoized).  The [keys] mirror is {e always} resident, which is what
    lets every decision path — pivots, min hints, merge ordering — run
    identically on spilled blocks; see {!items}. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Bloom = Klsm_primitives.Bloom
  module Obs = Klsm_obs.Obs

  (* Observability of the block pool (lib/obs; docs/METRICS.md). *)
  let c_pool_hit = Obs.counter "pool.hit"
  let c_pool_miss = Obs.counter "pool.miss"
  let c_pool_bytes = Obs.counter "pool.bytes_avoided"

  type state =
    | Private  (** under construction; reachable only by its creator *)
    | Published  (** possibly reachable by other threads; never recycled *)
    | Retired  (** arrays handed back to the owner's pool; must be dead *)

  (** Where a block's boxed items live (lib/store; docs/STORAGE.md).  A
      [Resident] block is the classic in-RAM block.  A [Spilled] block's
      items sit in the content-addressed store under [ident]; only the
      [keys] mirror stays resident, so every find-min/pivot/merge {e
      decision} runs without touching the payload, and only item {e
      selection} faults it back in through {!items}.  [memo] caches the
      rehydrated array forever after (a block never flips back to
      [Resident]: an atomic [memo] read is the publication fence that makes
      cross-thread rehydration safe, and it is only paid on spilled
      blocks). *)
  type 'v cold = {
    fetch : unit -> 'v Item.t array;
        (** load + verify + journal; provided by the store layer *)
    note_memo : unit -> unit;  (** observability hook for memo hits *)
    claim : bool B.atomic;  (** rehydration mutual exclusion *)
    memo : 'v Item.t array option B.atomic;
    ident : string;  (** content digest, for tests and GC *)
  }

  and 'v payload = Resident of 'v Item.t array | Spilled of 'v cold

  type 'v t = {
    level : int;
    payload : 'v payload;
        (** [Resident]: capacity [2^level], descending keys.  [Spilled]:
            items on disk; [keys] holds exactly the serialized keys. *)
    keys : int array;  (** [keys.(i) = Item.key items.(i)] for [i < filled] *)
    filled : int B.atomic;
    mutable filter : Bloom.t;
    mutable state : state;
  }

  let capacity_of_level level = 1 lsl level

  let level t = t.level
  let filled t = B.get t.filled

  let capacity t =
    match t.payload with
    | Resident items -> Array.length items
    | Spilled _ -> Array.length t.keys

  let filter t = t.filter
  let state t = t.state
  let is_empty t = filled t = 0

  (** Is any part of this block's payload on disk (even if memoized back)? *)
  let is_spilled t =
    match t.payload with Resident _ -> false | Spilled _ -> true

  (** Is the payload {e only} on disk?  Cold blocks hold no dead items (the
      spiller claims items before serializing, so everything serialized is
      alive, and taking an item requires its in-RAM pointer): [shrink] and
      [count_alive] exploit this to stay off the disk.  One atomic read on
      spilled blocks; a plain pattern match on resident ones. *)
  let is_cold t =
    match t.payload with
    | Resident _ -> false
    | Spilled c -> Option.is_none (B.get c.memo)

  (** Content digest of a spilled block ([None] for resident ones). *)
  let ident t =
    match t.payload with Resident _ -> None | Spilled c -> Some c.ident

  (** The boxed items without waiting.  Resident blocks: one pattern
      match, no atomics — the hot paths are unperturbed.  Spilled blocks:
      first access wins the [claim] CAS and runs [fetch] (disk read,
      digest verification, journal append); while that fetch is in flight
      every other caller gets [None] — selection paths treat such a block
      as transiently unavailable and pick elsewhere (the same transient
      the spill window itself already imposes, and well inside the
      relaxed semantics).  The memo is never demoted, so every item
      pointer ever handed out aliases the single canonical array —
      [Item.take] visibility works exactly as for resident blocks.  If
      [fetch] dies (corruption, chaos kill) the claim is released so
      another thread can retry. *)
  let try_items t =
    match t.payload with
    | Resident a -> Some a
    | Spilled c -> (
        match B.get c.memo with
        | Some a ->
            c.note_memo ();
            Some a
        | None ->
            if B.compare_and_set c.claim false true then begin
              match c.fetch () with
              | a ->
                  B.set c.memo (Some a);
                  Some a
              | exception e ->
                  B.set c.claim false;
                  raise e
            end
            else None)

  (** The boxed items, waiting out a concurrent fetch if there is one.
      For paths that cannot pick elsewhere (merges materialize the union
      whatever it costs). *)
  let rec items t =
    match try_items t with
    | Some a -> a
    | None ->
        (* A genuine yield, not cpu_relax: the claim holder is doing
           milliseconds of disk + digest work, and on oversubscribed
           cores a pause-loop waiter would starve it for timeslices. *)
        B.yield ();
        items t

  (* Writes under construction only ever target resident blocks. *)
  let resident_exn t =
    match t.payload with
    | Resident a -> a
    | Spilled _ -> invalid_arg "Block: write into a spilled block"

  (** Per-thread freelist of retired blocks, binned by level (paper §4.4's
      reuse scheme).  Strictly single-owner: only the owning thread ever
      acquires from or retires into its pool, so no synchronization is
      needed and the Sim backend schedule is unperturbed. *)
  module Pool = struct
    type 'v block = 'v t

    type 'v t = {
      slots : 'v block list array;  (** freelist per level *)
      counts : int array;
      obs : Obs.handle;
    }

    (* Levels above [max_level] are never pooled (a level-21 pair is
       ~32 MiB); [max_per_level] bounds retention of stale item pointers
       the recycled arrays keep alive until overwritten. *)
    let max_level = 21
    let max_per_level = 4

    let create ?(obs = Obs.null_handle) () =
      {
        slots = Array.make (max_level + 1) [];
        counts = Array.make (max_level + 1) 0;
        obs;
      }
  end

  (* Bytes a pool hit avoids allocating: one unboxed int array plus one
     pointer array, [2^level] words each. *)
  let bytes_per_slot = 2 * (Sys.word_size / 8)

  let pool_acquire (p : 'v Pool.t) lvl : 'v t option =
    if lvl <= Pool.max_level then begin
      match p.Pool.slots.(lvl) with
      | b :: rest ->
          p.Pool.slots.(lvl) <- rest;
          p.Pool.counts.(lvl) <- p.Pool.counts.(lvl) - 1;
          Obs.incr p.Pool.obs c_pool_hit;
          Obs.add p.Pool.obs c_pool_bytes (Array.length b.keys * bytes_per_slot);
          b.state <- Private;
          B.set b.filled 0;
          b.filter <- Bloom.empty;
          Some b
      | [] ->
          Obs.incr p.Pool.obs c_pool_miss;
          None
    end
    else begin
      Obs.incr p.Pool.obs c_pool_miss;
      None
    end

  (** Hand a block's arrays back to the owning thread's pool.  A no-op on
      [Published] blocks (spies/snapshots may still hold them — §4.4's GC
      fallback) and without a pool; callers therefore never need to track
      ownership at the call site.  Spilled blocks are marked dead but never
      pooled: their [keys] array has payload length, not [2^level], and
      their payload state must not leak into a recycled block. *)
  let retire ?pool t =
    match pool with
    | None -> ()
    | Some p -> (
        match t.state with
        | Published | Retired -> ()
        | Private -> (
            t.state <- Retired;
            match t.payload with
            | Spilled _ -> ()
            | Resident _ ->
                let l = t.level in
                if
                  l <= Pool.max_level
                  && p.Pool.counts.(l) < Pool.max_per_level
                then begin
                  p.Pool.slots.(l) <- t :: p.Pool.slots.(l);
                  p.Pool.counts.(l) <- p.Pool.counts.(l) + 1
                end))

  (** Mark a block reachable by other threads.  Must run before the
      publishing write (slot store / snapshot CAS): from then on the block
      must never be recycled.  Idempotent; a [Retired] block resurfacing
      here is a pooling bug and fails loudly. *)
  let publish t =
    match t.state with
    | Private -> t.state <- Published
    | Published -> ()
    | Retired -> failwith "Block.publish: retired block resurfaced"

  (* Blocks are always created from at least one source item, which doubles
     as the array filler for the unfilled tail (never read: readers stop at
     [filled]).  A pooled block keeps its previous tail contents instead —
     equally unread. *)
  let create_with_exemplar ?pool level exemplar =
    let fresh () =
      let cap = capacity_of_level level in
      {
        level;
        payload = Resident (Array.make cap exemplar);
        keys = Array.make cap 0;
        filled = B.make 0;
        filter = Bloom.empty;
        state = Private;
      }
    in
    match pool with
    | None -> fresh ()
    | Some p -> ( match pool_acquire p level with Some b -> b | None -> fresh ())

  (** [spilled ~level ~keys ~ident ...] is a cold block over a store object:
      [keys] (descending, exactly the serialized keys) is the resident
      mirror, [fetch] loads the items on first selection.  Built by the
      spill policy and by recovery (lib/store), never by the queue
      itself. *)
  let spilled ~level ~keys ~ident ~note_memo ~fetch =
    {
      level;
      payload =
        Spilled { fetch; note_memo; claim = B.make false; memo = B.make None; ident };
      keys;
      filled = B.make (Array.length keys);
      (* Cold blocks opt out of local-ordering peeks: an empty filter keeps
         find_min's Bloom loop from faulting the payload in. *)
      filter = Bloom.empty;
      state = Private;
    }

  (** [singleton ~filter item] is the level-0 block of one item. *)
  let singleton ?pool ~filter item =
    let b = create_with_exemplar ?pool 0 item in
    (resident_exn b).(0) <- item;
    b.keys.(0) <- Item.key item;
    B.set b.filled 1;
    b.filter <- filter;
    b

  (** [of_sorted_array ~filter items] is a block holding exactly [items],
      whose keys must already be descending (checked); the level is the
      smallest whose capacity fits.  This is the bulk constructor for
      tests, benchmarks, and recovery planting — folding {!merge} over
      singletons is not equivalent: each merge allocates at
      [1 + max level], so an n-item fold transiently demands a
      [2^n]-capacity block. *)
  let of_sorted_array ?pool ~filter items =
    let n = Array.length items in
    if n = 0 then invalid_arg "Block.of_sorted_array: empty";
    let lvl = ref 0 in
    while capacity_of_level !lvl < n do
      incr lvl
    done;
    let b = create_with_exemplar ?pool !lvl items.(0) in
    let dst = resident_exn b in
    let prev = ref max_int in
    Array.iteri
      (fun i it ->
        let k = Item.key it in
        if k > !prev then
          invalid_arg "Block.of_sorted_array: keys not descending";
        prev := k;
        dst.(i) <- it;
        b.keys.(i) <- k)
      items;
    B.set b.filled n;
    b.filter <- filter;
    b

  (** Minimal key of the block in O(1): the last logically-held item.
      May be a deleted item; callers handle that (find-min falls back and
      retries after consolidation). *)
  let last_item t =
    let f = filled t in
    if f = 0 then None else Some (items t).(f - 1)

  (** First alive item scanning from the minimum upward; [None] if the whole
      block is dead.  Opportunistically publishes the shortened [filled] so
      the dead tail is skipped only once — the same benign race as
      [shrink]: concurrent writes only ever shrink past items that are
      already dead, and a stale larger value merely re-exposes dead items
      (paper §4.1). *)
  let peek_min ~alive t =
    let f = filled t in
    let its = if f = 0 then [||] else items t in
    let rec scan i =
      if i < 0 then begin
        if f > 0 then B.set t.filled 0;
        None
      end
      else begin
        B.tick 1;
        let it = its.(i) in
        if alive it then begin
          if i < f - 1 then B.set t.filled (i + 1);
          Some it
        end
        else scan (i - 1)
      end
    in
    scan (f - 1)

  (** Count of alive items; O(filled), for tests and spill decisions.  Cold
      blocks hold only alive items (see {!is_cold}), counted without
      faulting the payload in. *)
  let count_alive ~alive t =
    if is_cold t then filled t
    else begin
      let its = items t in
      let n = ref 0 in
      for i = 0 to filled t - 1 do
        if alive its.(i) then incr n
      done;
      !n
    end

  let iter ~f t =
    let fl = filled t in
    if fl > 0 then begin
      let its = items t in
      for i = 0 to fl - 1 do
        f its.(i)
      done
    end

  let to_list t =
    let fl = filled t in
    if fl = 0 then []
    else begin
      let its = items t in
      let acc = ref [] in
      for i = 0 to fl - 1 do
        acc := its.(i) :: !acc
      done;
      List.rev !acc
    end

  (* Append with a precomputed key (hot paths stream keys from the flat
     array instead of re-reading the boxed item). *)
  let append_keyed ~alive t item key =
    if alive item then begin
      let f = B.get t.filled in
      (resident_exn t).(f) <- item;
      t.keys.(f) <- key;
      B.set t.filled (f + 1)
    end

  (* Append to a block under construction (private to the caller). *)
  let append ~alive t item = append_keyed ~alive t item (Item.key item)

  (** [copy ~alive t lvl] copies the alive items of [t] into a fresh block
      of level [lvl] (capacity must suffice, which callers guarantee since
      filtering only shrinks). *)
  let copy ?pool ~alive t lvl =
    let f = filled t in
    let its = items t in
    let nb =
      create_with_exemplar ?pool lvl its.(if f = 0 then 0 else f - 1)
    in
    nb.filter <- t.filter;
    for i = 0 to f - 1 do
      append_keyed ~alive nb its.(i) t.keys.(i)
    done;
    B.tick f;
    nb

  (** [copy_prefix ~alive t ~keep] copies the first [keep] entries of [t]
      (its {e largest} keys — entries [keep..filled-1] are the small tail a
      batch claim consumed) into a fresh block of the same level, filtering
      dead items on the way.  The Bloom filter is preserved: it already
      over-approximates the surviving subset, which is all local ordering
      needs.  The level is kept rather than shrunk so a rebuilt array keeps
      its strictly-decreasing-levels invariant without re-normalizing. *)
  let copy_prefix ?pool ~alive t ~keep =
    let its = items t in
    let nb = create_with_exemplar ?pool t.level its.(0) in
    nb.filter <- t.filter;
    for i = 0 to keep - 1 do
      append_keyed ~alive nb its.(i) t.keys.(i)
    done;
    B.tick keep;
    nb

  (** [prefix_view t ~keep] is the O(1) form of {!copy_prefix} for a
      [Published] input: a fresh block {e record} sharing [t]'s arrays
      (and, when spilled, its cold payload and rehydration memo) with only
      the first [keep] entries visible.  No copying, no allocation beyond
      the record — the whole point of the batched claim's rebuild
      (DESIGN.md §17) is that removing a block's small tail must not cost
      a copy of its large prefix.  Safe because published arrays are
      immutable-shared and never pool-recycled (§4.4: the GC reclaims
      them; appends only ever target [Private] blocks), and the new record
      carries its own [filled] cell, so the benign shrink races of
      {!peek_min}/{!shrink} stay per-record.  Dead entries inside the kept
      prefix survive the view (unlike {!copy_prefix}'s alive filter);
      consolidation purges them exactly as it does in any snapshot.  The
      Bloom filter over-approximates the subset, as in {!copy_prefix}. *)
  let prefix_view t ~keep =
    B.tick 1;
    {
      level = t.level;
      payload = t.payload;
      keys = t.keys;
      filled = B.make keep;
      filter = t.filter;
      state = Published;
    }

  (** Two-way merge of [b1] and [b2] into a fresh block whose level always
      has room for both inputs; alive filtering happens on the way.  The
      Bloom filters are united — the only point where filters change.
      When a [pool] is given, [Private] inputs are retired after their
      contents are copied out: a private input to a pooled merge is by
      construction a dead cascade intermediate (published inputs are left
      untouched). *)
  let merge ?pool ~alive b1 b2 =
    let f1 = filled b1 and f2 = filled b2 in
    (* A spilled input rehydrates here: merging materializes the union, so
       the cold payload is needed in RAM anyway (its journal entry retires
       on fetch; the merged output is an ordinary resident block). *)
    let i1 = if f1 > 0 then items b1 else [||] in
    let i2 = if f2 > 0 then items b2 else [||] in
    let lvl = 1 + max b1.level b2.level in
    let exemplar =
      if f1 > 0 then i1.(0)
      else if f2 > 0 then i2.(0)
      else invalid_arg "Block.merge: both blocks empty"
    in
    let nb = create_with_exemplar ?pool lvl exemplar in
    nb.filter <- Bloom.union b1.filter b2.filter;
    (* Inputs are descending; emit descending.  Compares stream the flat
       key arrays; the boxed item is only touched to append. *)
    let k1 = b1.keys and k2 = b2.keys in
    let i = ref 0 and j = ref 0 in
    while !i < f1 && !j < f2 do
      let x = k1.(!i) and y = k2.(!j) in
      if x >= y then begin
        append_keyed ~alive nb i1.(!i) x;
        incr i
      end
      else begin
        append_keyed ~alive nb i2.(!j) y;
        incr j
      end
    done;
    while !i < f1 do
      append_keyed ~alive nb i1.(!i) k1.(!i);
      incr i
    done;
    while !j < f2 do
      append_keyed ~alive nb i2.(!j) k2.(!j);
      incr j
    done;
    B.tick (f1 + f2);
    retire ?pool b1;
    retire ?pool b2;
    nb

  (** Listing 1's [shrink]: drop the dead tail, and if the block now fits a
      strictly smaller level, copy it down (recursively, because the copy
      filters dead items out of the middle too).  A [Private] input that is
      copied down is retired into [pool]. *)
  let rec shrink ?pool ~alive t =
    if is_cold t then t
      (* Cold blocks carry no dead items and no unfilled tail — there is
         nothing to shrink, and staying out of [items] is what keeps routine
         consolidations from faulting the whole cold tier back in. *)
    else begin
    let its = items t in
    let f = ref (filled t) in
    while !f > 0 && not (alive its.(!f - 1)) do
      B.tick 1;
      decr f
    done;
    let l = ref t.level in
    while !l > 0 && !f <= capacity_of_level (!l - 1) do
      decr l
    done;
    if !l < t.level then begin
      let c = copy ?pool ~alive t !l in
      retire ?pool t;
      shrink ?pool ~alive c
    end
    else begin
      (* Benign racy write: only ever decreases towards the true value. *)
      if !f < B.get t.filled then B.set t.filled !f;
      t
    end
    end

  (** Validate the block invariants (tests and chaos oracles): descending
      keys, filled within capacity, the SoA mirror
      [keys.(i) = Item.key items.(i)], and — the pool-safety oracle — that
      no [Retired] block is reachable from a live structure.  On cold
      blocks the mirror check is skipped (checking it would fault the
      payload in; the store layer verifies the digest and the key mirror on
      every rehydration instead). *)
  let check_invariants t =
    let f = filled t in
    if f < 0 || f > capacity t then failwith "Block: filled out of range";
    (match t.payload with
    | Resident items ->
        if Array.length t.keys <> Array.length items then
          failwith "Block: keys/items capacity mismatch"
    | Spilled c -> (
        match B.get c.memo with
        | None -> ()
        | Some items ->
            if Array.length t.keys <> Array.length items then
              failwith "Block: keys/items capacity mismatch"));
    (match t.state with
    | Retired -> failwith "Block: retired block reachable"
    | Private | Published -> ());
    for i = 0 to f - 2 do
      if t.keys.(i) < t.keys.(i + 1) then failwith "Block: keys not descending"
    done;
    if not (is_cold t) then begin
      let its = items t in
      for i = 0 to f - 1 do
        if t.keys.(i) <> Item.key its.(i) then
          failwith "Block: keys mirror out of sync"
      done
    end
end
