(** The k-LSM relaxed priority queue — the paper's headline data structure
    (§4.3, Listing 5): one distributed LSM per thread for batching and
    local work, plus a single shared k-LSM for global (relaxed) ordering,
    plus a victim array for spying.

    Guarantees (paper §5): [insert] and [try_delete_min] are lock-free and
    linearizable with structural rho-relaxation, rho = T*k — a delete-min
    never skips more than [T*k] keys — while items inserted and deleted by
    the same thread obey exact priority-queue semantics (local ordering).

    [k] is runtime-configurable through {!set_k}.  The optional
    [should_delete] predicate implements §4.5's lazy deletion: condemned
    items are filtered out whenever blocks are copied, merged or shrunk —
    the mechanism the SSSP benchmark uses in place of decrease-key. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Block = Block.Make (B)
  module Block_array = Block_array.Make (B)
  module Shared_klsm = Shared_klsm.Make (B)
  module Dist_lsm = Dist_lsm.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Tabular_hash = Klsm_primitives.Tabular_hash
  module Obs = Klsm_obs.Obs

  let name = "k-lsm"

  (* Observability of the Listing 5 composition layer (lib/obs;
     docs/METRICS.md): claim races and the two fallback paths of
     delete-min. *)
  let c_take_race = Obs.counter "klsm.take_race"
  let c_delete_local = Obs.counter "klsm.delete_local"
  let c_delete_shared = Obs.counter "klsm.delete_shared"
  let c_delete_empty = Obs.counter "klsm.delete_empty"
  let c_spy_attempt = Obs.counter "klsm.spy_attempt"
  let c_spy_success = Obs.counter "klsm.spy_success"

  (** A durability hook (lib/store): applied to every block headed for the
      shared component; may replace it with a cold, store-backed twin
      ([Spill.policy]).  [alive] lets the policy skip condemned items;
      [tid] routes its journal appends to the calling thread's log. *)
  type 'v spill_policy =
    alive:('v Item.t -> bool) -> tid:int -> 'v Block.t -> 'v Block.t

  type 'v t = {
    shared : 'v Shared_klsm.t;
    dists : 'v Dist_lsm.t option B.atomic array;  (** victims, §4.3 *)
    num_threads : int;
    seed : int;
    hasher : Tabular_hash.t;
    alive : 'v Item.t -> bool;
    spill_max_level : int option;
        (** ablation override of the §4.3 spill threshold *)
    spill_policy : 'v spill_policy option;
    obs : Obs.sheet;  (** per-thread internal event counters (lib/obs) *)
  }

  type 'v handle = {
    t : 'v t;
    tid : int;
    dist : 'v Dist_lsm.t;
    shared_h : 'v Shared_klsm.handle;
    spill_tx : 'v Block.t -> 'v Block.t;
        (** the spill policy pre-applied to this thread ([Fun.id] when the
            queue has no durability tier) *)
    rng : Xoshiro.t;
    obs : Obs.handle;
    pool : 'v Block.Pool.t;
        (** this thread's block pool, shared by [dist] and [shared_h] so
            blocks retired on either path feed both (§4.4 reuse) *)
  }

  let create_with ?(seed = 1) ?(k = 256) ?should_delete ?on_lazy_delete
      ?spill_max_level ?spill_policy ?(local_ordering = true) ~num_threads () =
    if num_threads < 1 then invalid_arg "Klsm.create: num_threads < 1";
    let hasher = Tabular_hash.create ~seed:(seed lxor 0x5eed) in
    let alive =
      match should_delete with
      | None -> fun it -> not (Item.is_taken it)
      | Some p ->
          (* A condemned item is claimed through its [taken] flag before the
             hook runs, so [on_lazy_delete] fires exactly once per item even
             though liveness is re-checked on every copy/merge/peek (and the
             item may appear in several blocks via spying). *)
          let hook =
            match on_lazy_delete with Some f -> f | None -> fun _ _ -> ()
          in
          fun it ->
            if Item.is_taken it then false
            else if p (Item.key it) (Item.value it) then begin
              if Item.take it then hook (Item.key it) (Item.value it);
              false
            end
            else true
    in
    {
      shared = Shared_klsm.create ~k ~local_ordering ~hasher ~alive ();
      dists = Array.init num_threads (fun _ -> B.make None);
      num_threads;
      seed;
      hasher;
      alive;
      spill_max_level;
      spill_policy;
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()

  let get_k t = Shared_klsm.get_k t.shared
  let set_k t k = Shared_klsm.set_k t.shared k

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid =
    if tid < 0 || tid >= t.num_threads then invalid_arg "Klsm.register: tid";
    let rng = Xoshiro.create ~seed:(t.seed + (1000003 * (tid + 1))) in
    let obs = Obs.handle t.obs ~tid in
    let pool = Block.Pool.create ~obs () in
    let dist =
      Dist_lsm.create ~obs ~pool ~tid ~hasher:t.hasher ~alive:t.alive ()
    in
    B.set t.dists.(tid) (Some dist);
    {
      t;
      tid;
      dist;
      shared_h =
        Shared_klsm.register ~obs ~pool t.shared ~tid ~rng:(Xoshiro.split rng);
      spill_tx =
        (match t.spill_policy with
        | None -> Fun.id
        | Some p -> fun block -> p ~alive:t.alive ~tid block);
      rng;
      obs;
      pool;
    }

  (* Publish a block into the shared component, through the durability
     policy.  Every path a block takes into [t.shared] funnels here. *)
  let share h block = Shared_klsm.insert h.shared_h (h.spill_tx block)

  (** Insert a block directly into the shared component (recovery path:
      [Spill.recover] links rebuilt cold blocks through this). *)
  let adopt_block h block = share h block

  (** Insert a key (§4.3): a fresh item goes into the thread-local LSM; if
      the merge cascade produces a block too large to stay local (level
      beyond [floor(log2 k) - 1]), that block is bulk-inserted into the
      shared k-LSM — batching that makes shared updates ~k times rarer. *)
  let insert h key value =
    if key < 0 then invalid_arg "Klsm.insert: negative key";
    let item = Item.make key value in
    let max_level =
      match h.t.spill_max_level with
      | Some l -> l
      | None -> Dist_lsm.max_level_for_k (Shared_klsm.get_k h.t.shared)
    in
    Dist_lsm.insert h.dist item ~max_level ~spill:(fun block -> share h block)

  (** Bulk insertion: a whole batch becomes one sorted block inserted into
      the shared component with a single CAS — the LSM's natural strength
      (§4.1 reduces shared updates by batching; this exposes the mechanism
      to applications that produce keys in bursts, e.g. node expansions).
      Linearizes once for the entire batch. *)
  let insert_batch h pairs =
    match Array.length pairs with
    | 0 -> ()
    | 1 ->
        let key, value = pairs.(0) in
        insert h key value
    | n ->
        Array.iter
          (fun (key, _) ->
            if key < 0 then invalid_arg "Klsm.insert_batch: negative key")
          pairs;
        let items =
          Array.map (fun (key, value) -> Item.make key value) pairs
        in
        (* Blocks store keys in descending order. *)
        Array.sort (fun a b -> compare (Item.key b) (Item.key a)) items;
        let level = Klsm_primitives.Bits.ceil_log2 n in
        let block = Block.create_with_exemplar ~pool:h.pool level items.(0) in
        block.Block.filter <-
          Klsm_primitives.Bloom.singleton ~hasher:h.t.hasher h.tid;
        Array.iter (fun it -> Block.append ~alive:h.t.alive block it) items;
        share h block

  (* Spy on one random other thread (Listing 5's fallback when both
     components look empty). *)
  let spy_once h =
    if h.t.num_threads <= 1 then false
    else begin
      let victim_tid =
        let r = Xoshiro.int h.rng (h.t.num_threads - 1) in
        if r >= h.tid then r + 1 else r
      in
      match B.get h.t.dists.(victim_tid) with
      | None -> false
      | Some victim -> Dist_lsm.spy h.dist ~victim
    end

  (** Listing 5's [delete_min]: race the thread-local minimum against the
      shared k-LSM's relaxed minimum, attempt the test-and-set, retry on
      lost races, and spy on other threads' local LSMs before reporting
      empty.  Lock-free: every retry implies another thread succeeded. *)
  let try_delete_min h =
    let rec outer () =
      let rec take_loop () =
        let local = Dist_lsm.find_min h.dist in
        (* [from_shared] records which component supplied the winning
           candidate — the split the paper's §4.3 design argument is
           about (most deletes should be served locally). *)
        let shared = Shared_klsm.find_min h.shared_h in
        let candidate, from_shared =
          match (local, shared) with
          | None, sh -> (sh, true)
          | Some it, Some sh when Item.key sh < Item.key it -> (Some sh, true)
          | Some _, _ -> (local, false)
        in
        match candidate with
        | None -> None
        | Some item ->
            if Item.take item then begin
              Obs.incr h.obs
                (if from_shared then c_delete_shared else c_delete_local);
              Some (Item.key item, Item.value item)
            end
            else begin
              Obs.incr h.obs c_take_race;
              take_loop ()
            end
      in
      match take_loop () with
      | Some kv -> Some kv
      | None ->
          (* §4.2 requires spy to start from an empty local LSM; ours may
             still hold logically deleted items, so clean it first. *)
          Dist_lsm.consolidate h.dist;
          Obs.incr h.obs c_spy_attempt;
          if spy_once h then begin
            Obs.incr h.obs c_spy_success;
            outer ()
          end
          else begin
            Obs.incr h.obs c_delete_empty;
            None
          end
    in
    outer ()

  (** Batched delete-min (DESIGN.md §17): when the shared component holds
      the minimum, claim a whole run of it with one CAS
      ({!Shared_klsm.try_pop_batch}) capped at the local minimum so every
      returned key is one [try_delete_min] could have returned at its
      position; local wins are taken one at a time (they are already
      CAS-free).  Returns up to [n] items ascending; short batches mean the
      queue looked empty mid-run (same contract as a spurious [None]). *)
  let try_delete_min_batch h n =
    if n <= 0 then []
    else begin
      let out = ref [] (* descending *) and got = ref 0 in
      let rec go () =
        if !got < n then begin
          let local = Dist_lsm.find_min h.dist in
          let shared = Shared_klsm.find_min h.shared_h in
          (* Local at least ties — same arbitration as the single-pop race
             (ties go local). *)
          let take_local it =
            if Item.take it then begin
              Obs.incr h.obs c_delete_local;
              out := (Item.key it, Item.value it) :: !out;
              incr got
            end
            else Obs.incr h.obs c_take_race;
            go ()
          in
          match (local, shared) with
          | Some it, None -> take_local it
          | Some it, Some s when Item.key it <= Item.key s -> take_local it
          | _, Some s -> (
              let limit =
                match local with Some it -> Item.key it | None -> max_int
              in
              match
                Shared_klsm.try_pop_batch h.shared_h ~limit (n - !got)
              with
              | [] ->
                  (* Contended or stale view: fall back to a single take. *)
                  if Item.take s then begin
                    Obs.incr h.obs c_delete_shared;
                    out := (Item.key s, Item.value s) :: !out;
                    incr got
                  end
                  else Obs.incr h.obs c_take_race;
                  go ()
              | kvs ->
                  List.iter
                    (fun kv ->
                      Obs.incr h.obs c_delete_shared;
                      out := kv :: !out;
                      incr got)
                    kvs;
                  go ())
          | None, None ->
              (* Both empty: one spy round, then report the short batch. *)
              Dist_lsm.consolidate h.dist;
              Obs.incr h.obs c_spy_attempt;
              if spy_once h then begin
                Obs.incr h.obs c_spy_success;
                go ()
              end
              else Obs.incr h.obs c_delete_empty
        end
      in
      go ();
      List.rev !out
    end

  (** Relaxed peek (the paper's try_find_min interface extension, §4):
      returns a key/value among the rho+1 smallest without deleting it.
      The item may be deleted concurrently right after (or even just
      before) the return — peeking is inherently advisory on a concurrent
      queue. *)
  let try_find_min h =
    let local = Dist_lsm.find_min h.dist in
    let shared = Shared_klsm.find_min h.shared_h in
    let candidate =
      match (local, shared) with
      | None, sh -> sh
      | Some it, Some sh when Item.key sh < Item.key it -> Some sh
      | Some _, _ -> local
    in
    Option.map (fun it -> (Item.key it, Item.value it)) candidate

  (** Meld (paper §4.5): move every item of [src] into the queue behind
      [h], at block granularity — merging "lies at the heart of the LSM
      idea".  As in the paper, this is NOT linearizable: the caller must
      have exclusive access to [src] for the duration (concurrent
      operations on the destination are fine).  Adopted blocks get the
      conservative all-threads Bloom filter, since [src]'s filters were
      built with a different hash function. *)
  let meld h ~src =
    let adopt block =
      if not (Block.is_empty block) then begin
        let b = Block.copy ~alive:h.t.alive block (Block.level block) in
        b.Block.filter <- Klsm_primitives.Bloom.full;
        let b = Block.shrink ~alive:h.t.alive b in
        if not (Block.is_empty b) then share h b
      end
    in
    List.iter adopt (Shared_klsm.steal_all src.shared);
    Array.iter
      (fun slot ->
        match B.get slot with
        | Some d -> List.iter adopt (Dist_lsm.steal_all d)
        | None -> ())
      src.dists

  (** Force a cleanup of the thread-local component; exposed because the
      lazy-deletion predicate can strand condemned items until the next
      natural merge. *)
  let consolidate_local h = Dist_lsm.consolidate h.dist

  (** Number of items currently held (counting not-yet-cleaned deleted
      items); the paper allows this to be off by rho. *)
  let approximate_size t =
    let acc = ref (Shared_klsm.approximate_size t.shared) in
    Array.iter
      (fun slot ->
        match B.get slot with
        | Some d -> acc := !acc + Dist_lsm.total_filled d
        | None -> ())
      t.dists;
    !acc

  (* Internal accessors for white-box tests. *)
  let internal_shared t = t.shared
  let internal_dist h = h.dist
end

(** The deployment instantiation on OCaml domains. *)
module Default = Make (Klsm_backend.Real)

(* Static conformance: the combined queue implements the common interface. *)
module _ : Pq_intf.S = Default
