(** The common signature every concurrent priority queue in this repository
    implements — the paper's external interface (§4): [insert] always
    succeeds; [try_delete_min] returns a minimal key under the queue's
    ordering semantics, may fail spuriously, and is guaranteed to
    eventually return a key if one is present.

    Queues are handle-based: a thread calls [register] once with its dense
    thread id in [0, num_threads) and then operates through its handle
    (thread-local state — snapshots, RNG streams, local LSMs — lives
    there).  Handles are single-owner: do not share one across threads.
    Keys are native ints; smaller keys have higher priority. *)

module type S = sig
  type 'v t
  type 'v handle

  val name : string

  val create : ?seed:int -> num_threads:int -> unit -> 'v t
  (** [create ~num_threads ()] builds a queue for up to [num_threads]
      registered threads.  [seed] makes every internal random choice
      reproducible. *)

  val register : 'v t -> int -> 'v handle
  (** [register t tid] claims thread slot [tid] (0-based, < num_threads). *)

  val insert : 'v handle -> int -> 'v -> unit
  (** [insert h key v] inserts; always succeeds.  [key >= 0].  The paper's
      Listing 5 [insert]: local LSM first, spilling to the shared
      component per §4.3 (for the k-LSM; baselines use their own paths).

      Visibility caveat (DESIGN.md §15): implementations with per-handle
      insertion buffering (the sharded k-LSM's [~buf]) may hold up to B
      inserted items in the inserting handle, invisible to {e other}
      threads until a flush — triggered by buffer capacity, an age bound,
      or the owner's next delete-min/find-min whose answer the buffer
      would undercut.  Buffered items are charged against the owner's
      local relaxation budget, so the queue's advertised rank bound is
      unaffected; the owner's own view stays exact. *)

  val try_delete_min : 'v handle -> (int * 'v) option
  (** Delete and return a minimal key (under the queue's relaxation).
      [None] when the queue looks empty — possibly spuriously; callers that
      know the queue is non-empty simply retry. *)

  val try_delete_min_batch : 'v handle -> int -> (int * 'v) list
  (** [try_delete_min_batch h n] deletes and returns up to [n] items, in
      ascending key order.  Semantics are those of repeated
      {!try_delete_min}: each returned item was a minimal key under the
      queue's relaxation at its own deletion point, and a short (even
      empty) batch is the analogue of a spurious [None] — callers that
      know items remain simply call again.  Queues without a bulk path run
      exactly that loop; the k-LSMs specialize it so a whole run of items
      is claimed from the shared component with a single CAS, which is how
      delete-side batching (DESIGN.md §17) amortizes the shared hot spot
      the way {!insert_batch} does for inserts. *)

  val insert_batch : 'v handle -> (int * 'v) array -> unit
  (** [insert_batch h pairs] inserts every [(key, value)] pair.  Semantics
      are the same as repeated {!insert}; implementations are free to (and
      the k-LSM does) linearize the whole batch as one shared-component
      update, which is how batching layers above the queue (the submitter
      in [lib/sched]) amortize the shared hot spot.  Queues without a bulk
      path fall back to an element-by-element loop.

      [pairs] is {e borrowed} for the duration of the call: implementations
      must not retain a reference to it after returning (they may read it
      freely while the call runs).  This lets callers flush a reusable
      thread-local buffer without copying it per batch. *)

  val stats : 'v t -> Klsm_obs.Obs.snapshot
  (** Type-erased snapshot of the queue's internal event counters and span
      timers ([lib/obs]): per-thread CAS retries, consolidations, spy
      traffic, ... — the internal quantities the paper's §5 discussion
      explains Figures 3-4 with.  Empty unless observability was enabled
      ({!Klsm_obs.Obs.set_enabled}) {e before} the queue was created; see
      [docs/METRICS.md] for what each emitted name means. *)
end
