(** The contention-striped k-LSM: the combined queue of {!Klsm} with its
    single shared component split into [S] independent {!Shared_klsm}
    stripes (DESIGN.md §12), hardened with the MultiQueue-style contention
    engineering of DESIGN.md §15.

    The paper's shared k-LSM serializes every spill and consolidation
    through one atomic [shared] pointer (§4.1, Listing 3); at high thread
    counts that CAS convoy — not thread-local work — caps throughput
    (Gruber/Träff/Wimmer, arXiv:1603.05047).  This module removes the
    convoy the way MultiQueue-style designs do (arXiv:1509.07053), but
    inside the k-LSM's bounded-relaxation contract:

    - the global budget [k] is partitioned as [ceil(k / S)] per stripe, so
      each stripe is an ordinary shared k-LSM with a smaller relaxation;
    - every thread has a {e home} stripe its spills go to (preserving the
      per-stripe publication ordering Listing 4 relies on);
    - [find_min] races the thread-local DistLSM minimum against a
      {e primary} stripe and — only when a stripe's
      {!Shared_klsm.min_hint} says it might hold something smaller — the
      remaining stripes (scanned from a rotating offset so ties don't
      starve), which is what keeps the rank bound
      rho <= (T + S) * ceil(k / S) provable rather than probabilistic
      (derivation in DESIGN.md §12); when every hint sits at or above the
      local candidate the race is skipped outright — S atomic loads serve
      the common local-delete path;
    - a per-thread {e candidate cache} reuses the last raced winner until
      its deletion flag is seen set or some stripe publishes state that
      could beat it — amortizing the cross-stripe race across consecutive
      delete-mins exactly as Listing 3's [observed] field amortizes
      snapshot refreshes;
    - failed snapshot CASes feed a per-stripe decorrelated-jitter
      {!Klsm_primitives.Backoff}, and a burst of consecutive failures on
      the home stripe triggers {e migration} to the next stripe.

    The §15 contention knobs, all off by default (the defaults reproduce
    the PR 5 behaviour bit-for-bit on the simulator):

    - {e stickiness} ([~sticky:W], W >= 1): after a delete-min is served
      from a stripe, the next W races consult that stripe {e first}
      instead of the home stripe.  The hint-gated scan over the other
      stripes is unchanged, so the rank bound is untouched — the win is
      that the primary consult targets the stripe most likely to still
      hold the minimum, whose fresh result then hint-skips the rest.  A
      failed publish CAS halves the remaining window (contention means the
      sticky stripe is being fought over);
    - {e insertion buffering} ([~buf:B], B >= 1): inserts gather in a
      per-handle buffer of at most B items and enter the thread-local LSM
      in a burst — flushed when the buffer fills, when a delete-min or
      find-min needs a buffered key (the buffered minimum undercuts the
      local LSM minimum), or when the oldest buffered item has waited
      {!buffer_age_bound} of its owner's operations.  Buffered items are
      charged against the {e local} relaxation budget: the LSM spill
      threshold drops to ceil(k/S) - B, so local LSM + buffer together
      never exceed the ceil(k/S) per-thread term of the rank bound;
    - {e adaptive striping} ([~adapt:(lo, hi)], powers of two): the stripe
      array is allocated at [hi], but spills target only the first
      {e active} stripes.  The active count starts at [~shards] and is
      doubled/halved between [lo] and [hi] by a CAS when a handle's
      observed publish-CAS failure rate over a {!adapt_window}-publish
      window crosses the grow/shrink watermarks.  Deactivated stripes
      drain naturally: the find-min race always covers all [hi] stripes,
      so no migration ever moves items — a resize only redirects future
      spills, with re-homing routed through the same [migrate_pending]
      latch as contention migration (acted on after the in-flight publish
      completes).  The rank bound is the (T + hi) * ceil(k / hi) of the
      full array;
    - every stripe's contended atomics are cache-line padded
      ({!Klsm_primitives.Padded}; [~padded:true] to {!Shared_klsm.create}).

    With [S = 1] and the knobs off the structure degenerates to the
    paper's k-LSM (one stripe, no second chance, no migration). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Block = Block.Make (B)
  module Block_array = Block_array.Make (B)
  module Shared_klsm = Shared_klsm.Make (B)
  module Dist_lsm = Dist_lsm.Make (B)
  module Backoff = Klsm_primitives.Backoff
  module Xoshiro = Klsm_primitives.Xoshiro
  module Tabular_hash = Klsm_primitives.Tabular_hash
  module Obs = Klsm_obs.Obs

  let name = "klsm-sharded"

  (* Observability (lib/obs; docs/METRICS.md).  The composition layer
     reuses the klsm.* names of {!Klsm} (same Listing 5 roles); the
     stripe.* family is specific to the sharded design. *)
  let c_take_race = Obs.counter "klsm.take_race"
  let c_delete_local = Obs.counter "klsm.delete_local"
  let c_delete_shared = Obs.counter "klsm.delete_shared"
  let c_delete_empty = Obs.counter "klsm.delete_empty"
  let c_spy_attempt = Obs.counter "klsm.spy_attempt"
  let c_spy_success = Obs.counter "klsm.spy_success"
  let c_stripe_cas_fail = Obs.counter "stripe.cas_fail"
  let c_migrate = Obs.counter "stripe.migrate"
  let c_cache_hit = Obs.counter "stripe.cache_hit"
  let c_cache_miss = Obs.counter "stripe.cache_miss"
  let c_hint_consult = Obs.counter "stripe.hint_consult"
  let c_hint_skip = Obs.counter "stripe.hint_skip"
  let c_sticky_hit = Obs.counter "stripe.sticky_hit"
  let c_buffer_flush = Obs.counter "stripe.buffer_flush"
  let c_resize = Obs.counter "stripe.resize"
  let c_dbuf_hit = Obs.counter "stripe.dbuf_hit"
  let c_dbuf_flush = Obs.counter "stripe.dbuf_flush"

  (** Per-stripe relaxation: the global budget split evenly, rounded up so
      S stripes never under-spend the contract ([S * ceil(k/S) >= k]). *)
  let stripe_k ~k ~shards = (k + shards - 1) / shards

  (** Consecutive home-stripe CAS failures that trigger migration.  Failures
      within one publish attempt burst are the signature of a convoy; 8 of
      them in a row mean at least 8 other threads hammered the same stripe
      while we starved. *)
  let migrate_threshold = 8

  (** Age bound of the insertion buffer, in operations of the owning
      handle: an item buffered while its owner performs this many further
      operations is force-flushed on the next one, bounding how long it
      stays invisible to spies and other threads' races.  (The rank bound
      never depends on this — buffered items are pre-charged against the
      local budget — it is a quality/liveness hygiene bound.) *)
  let buffer_age_bound = 64

  (** Publish outcomes a handle accumulates before consulting the adaptive
      resize watermarks (below).  Small enough to react within one chaos
      storm, large enough that a single lost race cannot flap the stripe
      count. *)
  let adapt_window = 32

  (* Adaptive watermarks, as fail/attempt rate over one window: grow the
     active stripe set at >= 1/2 (every other publish loses its CAS —
     a convoy), shrink at <= 1/8 (contention is paid for by extra hint
     consults with nothing to show for it). *)
  let adapt_grow_watermark fails seen = 2 * fails >= seen
  let adapt_shrink_watermark fails seen = 8 * fails <= seen

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  (** Durability hook; same shape as {!Klsm.Make.spill_policy} (the types
      are equal through the applicative functor). *)
  type 'v spill_policy =
    alive:('v Item.t -> bool) -> tid:int -> 'v Block.t -> 'v Block.t

  type 'v t = {
    stripes : 'v Shared_klsm.t array;
    dists : 'v Dist_lsm.t option B.atomic array;  (** victims, §4.3 *)
    num_threads : int;
    num_stripes : int;  (** allocated stripes ([adapt]'s upper target) *)
    k : int B.atomic;  (** global relaxation budget *)
    seed : int;
    hasher : Tabular_hash.t;
    alive : 'v Item.t -> bool;
    spill_max_level : int option;
        (** ablation override of the §4.3 spill threshold *)
    spill_policy : 'v spill_policy option;
        (** durability hook (lib/store); see {!Klsm.Make.spill_policy} *)
    sticky_window : int;  (** stickiness window W; 0 = off *)
    buf_cap : int;  (** insertion-buffer capacity B; 0 = off *)
    dbuf_cap : int;
        (** deletion batch size B (DESIGN.md §17): shared deletes claim up
            to B items with one publish CAS, serving B - 1 follow-ups from
            the owner's deletion buffer; 0 = off *)
    adapt : (int * int) option;
        (** adaptive active-stripe-count targets (lo, hi); [None] = fixed *)
    active : int B.atomic;
        (** spill-target stripe count, in [lo, hi]; only consulted when
            [adapt] is set (padded — it is CASed under contention) *)
    obs : Obs.sheet;
  }

  type 'v handle = {
    t : 'v t;
    tid : int;
    dist : 'v Dist_lsm.t;
    spill_tx : 'v Block.t -> 'v Block.t;
        (** the spill policy pre-applied to this thread *)
    stripe_hs : 'v Shared_klsm.handle array;  (** one handle per stripe *)
    mutable home : int;  (** current home stripe (spill target) *)
    mutable rr : int;  (** second-chance rotation counter *)
    mutable fail_streak : int;
        (** consecutive snapshot-CAS failures on the home stripe *)
    mutable migrate_pending : bool;
        (** latched when [fail_streak] crossed {!migrate_threshold} or the
            active stripe count moved under this handle's home; acted on
            after the in-flight publish completes (a publish retries on
            its stripe until it wins — migration applies to the next
            spill) *)
    backoffs : Backoff.t array;
        (** per-stripe decorrelated-jitter backoff, driven by the
            {!Shared_klsm} CAS hooks *)
    mutable cached : 'v Item.t option;  (** delete-min candidate cache *)
    mutable cached_key : int;
    mutable cached_stripe : int;
        (** stripe that produced the cached candidate; [-1] = none (feeds
            the stickiness window on a successful shared delete) *)
    cached_ptrs : 'v Block_array.t option array;
        (** per-stripe published-array tokens observed when the cache was
            filled; physical inequality + a hint below [cached_key] is the
            only thing that can invalidate a still-alive cached candidate *)
    mutable sticky_stripe : int;
        (** stripe that served the last shared delete-min *)
    mutable sticky_left : int;
        (** races left in the stickiness window; halved on CAS failure *)
    mutable buf : (int * 'v) list;  (** insertion buffer, newest first *)
    mutable buf_len : int;
    mutable buf_min : int;
        (** lower bound on the buffered keys ([max_int] = empty); kept
            conservative (never raised mid-flush), so a flush check that
            consults it can only over-flush, never hide an item *)
    mutable buf_age : int;
        (** owner operations since the oldest buffered item arrived *)
    mutable dbuf : (int * 'v) list;
        (** deletion buffer, ascending: items claimed-deleted from a stripe
            in a batch, not yet returned to the owner.  Invisible to every
            other thread — charged as the T * (B - 1) term of the widened
            rank bound (DESIGN.md §17) *)
    mutable dbuf_len : int;
    mutable dbuf_age : int;
        (** owner operations since the buffer last emptied; at
            {!buffer_age_bound} the remainder is flushed back into the
            thread-local LSM (liveness: a handle that stops deleting must
            not sit on claimed items) *)
    mutable dbuf_pending : (int * 'v) list;
        (** tentative batch claim, recorded {e before} the publish CAS and
            cleared when the claim resolves; read only by the chaos drive's
            crash accounting (a thread killed inside the publish holds the
            claim here whether or not its CAS landed) *)
    mutable pub_seen : int;  (** publish CASes in the current adapt window *)
    mutable pub_fail : int;  (** failed ones *)
    rng : Xoshiro.t;
    obs : Obs.handle;
    pool : 'v Block.Pool.t;
  }

  let create_with ?(seed = 1) ?(k = 256) ?(shards = 4) ?(sticky = 0)
      ?(buf = 0) ?(dbuf = 0) ?adapt ?should_delete ?on_lazy_delete
      ?spill_max_level ?spill_policy ?(local_ordering = true) ~num_threads () =
    if num_threads < 1 then
      invalid_arg "Sharded_klsm.create: num_threads < 1";
    if shards < 1 then invalid_arg "Sharded_klsm.create: shards < 1";
    if shards > k then
      invalid_arg "Sharded_klsm.create: shards > k (a stripe needs a budget)";
    if sticky < 0 then invalid_arg "Sharded_klsm.create: sticky < 0";
    (* Adaptive mode allocates the array at the upper target; doubling /
       halving between power-of-two rungs keeps every reachable active
       count a divisor-friendly power of two, so tid mod active spreads
       homes evenly at each rung. *)
    let num_stripes =
      match adapt with
      | None -> shards
      | Some (lo, hi) ->
          if not (is_pow2 lo && is_pow2 hi) then
            invalid_arg
              "Sharded_klsm.create: adaptive stripe targets must be powers \
               of two";
          if lo > hi then
            invalid_arg "Sharded_klsm.create: adapt lo > hi";
          if not (is_pow2 shards) then
            invalid_arg
              "Sharded_klsm.create: with ~adapt the initial shard count \
               must be a power of two";
          if shards < lo || shards > hi then
            invalid_arg
              "Sharded_klsm.create: initial shard count outside [lo, hi]";
          if hi > k then
            invalid_arg
              "Sharded_klsm.create: adapt upper target > k (a stripe needs \
               a budget)";
          hi
    in
    let kp = stripe_k ~k ~shards:num_stripes in
    if buf < 0 || buf > kp then
      invalid_arg
        (Printf.sprintf
           "Sharded_klsm.create: insertion buffer %d exceeds the per-stripe \
            budget ceil(k/S) = %d (buffered items are charged against the \
            local relaxation budget)"
           buf kp);
    if dbuf < 0 || dbuf > kp then
      invalid_arg
        (Printf.sprintf
           "Sharded_klsm.create: deletion batch %d exceeds the per-stripe \
            budget ceil(k/S) = %d (a batch claim must fit inside one \
            stripe's relaxation)"
           dbuf kp);
    if buf + dbuf > kp then
      invalid_arg
        (Printf.sprintf
           "Sharded_klsm.create: insertion buffer %d + deletion batch %d \
            overdraw the per-stripe budget ceil(k/S) = %d"
           buf dbuf kp);
    let hasher = Tabular_hash.create ~seed:(seed lxor 0x5eed) in
    let alive =
      match should_delete with
      | None -> fun it -> not (Item.is_taken it)
      | Some p ->
          (* Identical to {!Klsm.create_with}: the [taken] flag claims a
             condemned item before the hook runs, so [on_lazy_delete] fires
             exactly once per item. *)
          let hook =
            match on_lazy_delete with Some f -> f | None -> fun _ _ -> ()
          in
          fun it ->
            if Item.is_taken it then false
            else if p (Item.key it) (Item.value it) then begin
              if Item.take it then hook (Item.key it) (Item.value it);
              false
            end
            else true
    in
    {
      stripes =
        Array.init num_stripes (fun _ ->
            Shared_klsm.create ~k:kp ~local_ordering ~maintain_hint:true
              ~padded:true ~hasher ~alive ());
      dists = Array.init num_threads (fun _ -> B.make None);
      num_threads;
      num_stripes;
      k = B.make k;
      seed;
      hasher;
      alive;
      spill_max_level;
      spill_policy;
      sticky_window = sticky;
      buf_cap = buf;
      dbuf_cap = dbuf;
      adapt;
      active = Klsm_primitives.Padded.copy_as_padded (B.make shards);
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()

  let get_k t = B.get t.k
  let num_stripes t = t.num_stripes

  (** Stripes that current spills target ([num_stripes] when not adaptive;
      the race and the rank bound always cover the full array). *)
  let active_stripes t =
    match t.adapt with None -> t.num_stripes | Some _ -> B.get t.active

  (** Reconfigure the global budget; re-partitioned across the stripes, it
      takes effect on each stripe's next pivot recomputation. *)
  let set_k t k =
    if k < t.num_stripes then invalid_arg "Sharded_klsm.set_k: k < shards";
    let kp = stripe_k ~k ~shards:t.num_stripes in
    if t.buf_cap + t.dbuf_cap > kp then
      invalid_arg
        "Sharded_klsm.set_k: new per-stripe budget below the configured \
         insertion-buffer + deletion-batch capacities";
    B.set t.k k;
    Array.iter (fun s -> Shared_klsm.set_k s kp) t.stripes

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  (* One adaptive-resize accounting step, run from the publish-CAS hooks.
     Window full -> compare the observed failure rate against the
     watermarks and CAS the active count one power-of-two rung.  A lost
     resize CAS just means another handle resized first; both re-observe
     from fresh windows. *)
  let adapt_account h ~failed =
    match h.t.adapt with
    | None -> ()
    | Some (lo, hi) ->
        h.pub_seen <- h.pub_seen + 1;
        if failed then h.pub_fail <- h.pub_fail + 1;
        if h.pub_seen >= adapt_window then begin
          let fails = h.pub_fail and seen = h.pub_seen in
          h.pub_seen <- 0;
          h.pub_fail <- 0;
          let cur = B.get h.t.active in
          let target =
            if adapt_grow_watermark fails seen && cur * 2 <= hi then cur * 2
            else if adapt_shrink_watermark fails seen && cur / 2 >= lo then
              cur / 2
            else cur
          in
          if target <> cur then begin
            B.fault_point "sharded.resize";
            if B.compare_and_set h.t.active cur target then begin
              Obs.incr h.obs c_resize;
              (* Re-home through the same latch as contention migration:
                 the move happens after the in-flight publish lands. *)
              h.migrate_pending <- true
            end
          end
        end

  let register t tid =
    if tid < 0 || tid >= t.num_threads then
      invalid_arg "Sharded_klsm.register: tid";
    let rng = Xoshiro.create ~seed:(t.seed + (1000003 * (tid + 1))) in
    let obs = Obs.handle t.obs ~tid in
    let pool = Block.Pool.create ~obs () in
    let dist =
      Dist_lsm.create ~obs ~pool ~tid ~hasher:t.hasher ~alive:t.alive ()
    in
    B.set t.dists.(tid) (Some dist);
    let stripe_hs =
      Array.map
        (fun s -> Shared_klsm.register ~obs ~pool s ~tid ~rng:(Xoshiro.split rng))
        t.stripes
    in
    let home = tid mod active_stripes t in
    let h =
      {
        t;
        tid;
        dist;
        spill_tx =
          (match t.spill_policy with
          | None -> Fun.id
          | Some p -> fun block -> p ~alive:t.alive ~tid block);
        stripe_hs;
        home;
        rr = 0;
        fail_streak = 0;
        migrate_pending = false;
        backoffs =
          Array.init t.num_stripes (fun _ ->
              Backoff.create ~jitter:(Xoshiro.split rng) ());
        cached = None;
        cached_key = max_int;
        cached_stripe = -1;
        cached_ptrs = Array.make t.num_stripes None;
        sticky_stripe = home;
        sticky_left = 0;
        buf = [];
        buf_len = 0;
        buf_min = max_int;
        buf_age = 0;
        dbuf = [];
        dbuf_len = 0;
        dbuf_age = 0;
        dbuf_pending = [];
        pub_seen = 0;
        pub_fail = 0;
        rng;
        obs;
        pool;
      }
    in
    (* Contention hooks: every failed snapshot CAS on stripe [i] backs the
       thread off (decorrelated jitter, so losers of the same race stop
       retrying in lockstep); failures on the current home stripe also feed
       the migration detector, decay the stickiness window (the sticky
       stripe is being fought over), and — with ~adapt — feed the resize
       watermarks. *)
    Array.iteri
      (fun i sh ->
        sh.Shared_klsm.on_cas_fail <-
          (fun () ->
            Obs.incr obs c_stripe_cas_fail;
            if i = h.home then begin
              h.fail_streak <- h.fail_streak + 1;
              if h.fail_streak >= migrate_threshold then
                h.migrate_pending <- true
            end;
            if h.sticky_left > 0 then h.sticky_left <- h.sticky_left / 2;
            adapt_account h ~failed:true;
            Backoff.once h.backoffs.(i) ~relax:B.relax_n);
        sh.Shared_klsm.on_cas_success <-
          (fun () ->
            if i = h.home then h.fail_streak <- 0;
            adapt_account h ~failed:false;
            Backoff.reset h.backoffs.(i)))
      stripe_hs;
    h

  (* Spill a block to the home stripe; act on a pending migration after the
     publish completed (a {!Shared_klsm.insert} retries on its stripe until
     it wins, so the decision applies to the next spill).  A shrink that
     left this handle's home above the active range is picked up here too:
     the stale home is still raced by every reader (nothing is ever lost in
     a deactivated stripe), so the publish proceeds and the re-home applies
     to the next spill, exactly like contention migration. *)
  let spill_to_home h block =
    let block = h.spill_tx block in
    if h.t.adapt <> None && h.home >= active_stripes h.t then
      h.migrate_pending <- true;
    B.fault_point "sharded.spill.publish";
    Shared_klsm.insert h.stripe_hs.(h.home) block;
    if h.migrate_pending && h.t.num_stripes > 1 then begin
      B.fault_point "sharded.migrate";
      h.migrate_pending <- false;
      h.fail_streak <- 0;
      h.home <- (h.home + 1) mod max 1 (active_stripes h.t);
      Obs.incr h.obs c_migrate
    end
    else h.migrate_pending <- false

  (* §4.3 [insert] with the partitioned spill rule: local blocks spill at
     the level bound of the {e per-stripe} budget ceil(k/S), so each
     thread-local LSM holds at most ceil(k/S) items — the per-term bound
     the rho <= (T + S) * ceil(k/S) derivation charges for other threads'
     local components (DESIGN.md §12).  With insertion buffering the
     threshold shrinks by the buffer capacity (DESIGN.md §15): LSM +
     buffer together stay within the same ceil(k/S) term. *)
  let insert_now h key value =
    let item = Item.make key value in
    let max_level =
      match h.t.spill_max_level with
      | Some l -> l
      | None ->
          let kp = stripe_k ~k:(B.get h.t.k) ~shards:h.t.num_stripes in
          Dist_lsm.max_level_for_k (max 0 (kp - h.t.buf_cap))
    in
    Dist_lsm.insert h.dist item ~max_level ~spill:(fun b -> spill_to_home h b)

  (** Flush the insertion buffer into the thread-local LSM (no-op when
      empty).  Items leave the buffer one by one {e after} entering the
      LSM, so a crash mid-flush leaves every not-yet-inserted item still
      visible in [h.buf] (the chaos drive reads it to account for a
      crashed thread's buffered items); [buf_min] stays conservatively low
      until the buffer empties. *)
  let flush_buffer h =
    if h.buf_len > 0 then begin
      B.fault_point "sharded.buffer.flush";
      Obs.incr h.obs c_buffer_flush;
      let rec drain () =
        match h.buf with
        | [] ->
            h.buf_min <- max_int;
            h.buf_age <- 0
        | (key, value) :: rest ->
            insert_now h key value;
            h.buf <- rest;
            h.buf_len <- h.buf_len - 1;
            drain ()
      in
      drain ()
    end

  (** Return claimed-but-unserved deletion-buffer items to the queue: each
      is reinserted into the thread-local LSM as a fresh item (the claimed
      originals were consumed from their stripe and are invisible to every
      other thread, so reinsertion is the only way back to visibility).
      Triggered by the owner's age bound — a handle that stops deleting
      must not sit on claimed items — and by the chaos drive on surviving
      threads.  Items leave the buffer one by one {e after} reinsertion,
      mirroring {!flush_buffer}'s crash discipline: a crash mid-flush
      leaves the not-yet-reinserted tail visible in [h.dbuf] for the
      conservation accounting (an item caught on both sides is delivered
      at most once — the buffered copy never leaves a dead handle). *)
  let flush_dbuf h =
    if h.dbuf_len > 0 then begin
      B.fault_point "sharded.dbuf.flush";
      Obs.incr h.obs c_dbuf_flush;
      let rec drain () =
        match h.dbuf with
        | [] -> h.dbuf_age <- 0
        | (key, value) :: rest ->
            insert_now h key value;
            h.dbuf <- rest;
            h.dbuf_len <- h.dbuf_len - 1;
            drain ()
      in
      drain ()
    end

  (* One owner operation elapsed while deletion-buffer items wait; flush
     the remainder once the age bound is crossed. *)
  let dbuf_tick h =
    if h.dbuf_len > 0 then begin
      h.dbuf_age <- h.dbuf_age + 1;
      if h.dbuf_age >= buffer_age_bound then flush_dbuf h
    end

  (** §4.3 [insert], through the per-handle insertion buffer when one is
      configured (DESIGN.md §15): the common case is a buffer push; the
      LSM merge cascade and any stripe publish happen only on flush. *)
  let insert h key value =
    if key < 0 then invalid_arg "Sharded_klsm.insert: negative key";
    dbuf_tick h;
    if h.t.buf_cap = 0 then insert_now h key value
    else begin
      if h.buf_len > 0 then begin
        h.buf_age <- h.buf_age + 1;
        if h.buf_age >= buffer_age_bound then flush_buffer h
      end;
      h.buf <- (key, value) :: h.buf;
      h.buf_len <- h.buf_len + 1;
      if key < h.buf_min then h.buf_min <- key;
      if h.buf_len >= h.t.buf_cap then flush_buffer h
    end

  (* The delete-min/find-min side of buffering: serve from the exact local
     LSM unless a buffered key undercuts it, in which case flush first.
     This is what keeps find_min exact for the owner (no buffered item is
     ever invisible {e below} the served candidate) and single-thread
     semantics exact overall. *)
  let local_min_flushing h =
    let local = Dist_lsm.find_min h.dist in
    if
      h.buf_len > 0
      &&
      match local with
      | None -> true
      | Some it -> h.buf_min < Item.key it
    then begin
      flush_buffer h;
      Dist_lsm.find_min h.dist
    end
    else local

  (** Bulk insertion (one sorted block, one stripe publish); see
      {!Klsm.insert_batch}.  Bypasses the insertion buffer — the batch is
      already the amortized path. *)
  let insert_batch h pairs =
    match Array.length pairs with
    | 0 -> ()
    | 1 ->
        let key, value = pairs.(0) in
        insert h key value
    | n ->
        Array.iter
          (fun (key, _) ->
            if key < 0 then
              invalid_arg "Sharded_klsm.insert_batch: negative key")
          pairs;
        let items =
          Array.map (fun (key, value) -> Item.make key value) pairs
        in
        Array.sort (fun a b -> compare (Item.key b) (Item.key a)) items;
        let level = Klsm_primitives.Bits.ceil_log2 n in
        let block = Block.create_with_exemplar ~pool:h.pool level items.(0) in
        block.Block.filter <-
          Klsm_primitives.Bloom.singleton ~hasher:h.t.hasher h.tid;
        Array.iter (fun it -> Block.append ~alive:h.t.alive block it) items;
        spill_to_home h block

  (* ---- the striped find_min race ---- *)

  (* Is the cached candidate still a valid answer?  It must be alive, and
     every stripe must either be physically unchanged since the cache was
     filled (its pointer token matches; logical deletions do not move the
     pointer and only shrink the smaller-than set) or hint that it holds
     nothing below the cached key.  S atomic loads replace two-plus full
     snapshot consults. *)
  let cache_valid h =
    match h.cached with
    | None -> false
    | Some it ->
        h.t.alive it
        &&
        let s = h.t.num_stripes in
        let ok = ref true in
        let j = ref 0 in
        while !ok && !j < s do
          let stripe = h.t.stripes.(!j) in
          if
            Shared_klsm.peek_shared stripe != h.cached_ptrs.(!j)
            && Shared_klsm.min_hint stripe < h.cached_key
          then ok := false;
          incr j
        done;
        !ok

  (* The full race: a primary stripe (the sticky stripe while the
     stickiness window is open, the home stripe otherwise), then every
     other stripe whose min hint undercuts the best so far (scanned from a
     rotating offset).  Every stripe is thus either consulted (candidate
     within its ceil(k/S) relaxation) or certified by its hint to hold
     nothing smaller — the case split the DESIGN §12 rank bound sums over,
     regardless of which stripe went first. *)
  let race h =
    let s = h.t.num_stripes in
    (* Observation tokens first: a publish landing between the token read
       and the consult can only make the cache conservatively stale. *)
    for j = 0 to s - 1 do
      h.cached_ptrs.(j) <- Shared_klsm.peek_shared h.t.stripes.(j)
    done;
    let best = ref None in
    let best_key = ref max_int in
    let best_stripe = ref (-1) in
    let consult i =
      match Shared_klsm.find_min h.stripe_hs.(i) with
      | None -> ()
      | Some it ->
          let key = Item.key it in
          if Option.is_none !best || key < !best_key then begin
            best := Some it;
            best_key := key;
            best_stripe := i
          end
    in
    let primary =
      if h.t.sticky_window > 0 && h.sticky_left > 0 then begin
        h.sticky_left <- h.sticky_left - 1;
        Obs.incr h.obs c_sticky_hit;
        h.sticky_stripe
      end
      else h.home
    in
    consult primary;
    if s > 1 then begin
      (* Rotating scan offset: when several stripes undercut the current
         best they are consulted in a different order each race, so no
         single stripe permanently wins the ties. *)
      h.rr <- h.rr + 1;
      let start = h.rr mod s in
      for d = 0 to s - 1 do
        let j = (start + d) mod s in
        if j <> primary && Shared_klsm.min_hint h.t.stripes.(j) < !best_key
        then begin
          Obs.incr h.obs c_hint_consult;
          consult j
        end
      done
    end;
    h.cached <- !best;
    h.cached_key <- !best_key;
    h.cached_stripe <- !best_stripe;
    !best

  (** Relaxed minimum of the striped shared component (cache first, race on
      a miss).  The returned item may be taken concurrently; the combined
      delete-min loop handles that. *)
  let stripes_find_min h =
    if cache_valid h then begin
      Obs.incr h.obs c_cache_hit;
      h.cached
    end
    else begin
      Obs.incr h.obs c_cache_miss;
      race h
    end

  (* Do the hints certify that no stripe holds anything below [key]?  When
     they do, a local candidate at [key] needs no stripe consult at all —
     S atomic loads replace snapshot copies on the common
     serve-locally path (the split §4.3's design argument is about). *)
  let stripes_certified_above h key =
    let s = h.t.num_stripes in
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < s do
      if Shared_klsm.min_hint h.t.stripes.(!j) < key then ok := false;
      incr j
    done;
    !ok

  (* Spy on one random other thread (Listing 5's fallback). *)
  let spy_once h =
    if h.t.num_threads <= 1 then false
    else begin
      let victim_tid =
        let r = Xoshiro.int h.rng (h.t.num_threads - 1) in
        if r >= h.tid then r + 1 else r
      in
      match B.get h.t.dists.(victim_tid) with
      | None -> false
      | Some victim -> Dist_lsm.spy h.dist ~victim
    end

  (* Batched shared delete (DESIGN.md §17): claim up to B = [dbuf_cap]
     items from the stripe that won the race with ONE publish CAS
     ({!Shared_klsm.try_pop_batch}), capped at the local minimum — the
     run must not reach past what the owner itself holds.  No cross-stripe
     cap is applied at claim time: stripe hints lower-bound the smallest
     {e alive} key through logically deleted items, so they are
     systematically stale-low and would veto nearly every claim; instead
     the serve rule in {!try_delete_min} re-certifies the buffered head
     against the {e live} hints at every serve, which is strictly stronger
     than a claim-time check (hints move; the serve-time one is the one
     that matters for the rank bound).  The head is returned now; the rest
     lands in the owner's deletion buffer.  [dbuf_pending] records the
     tentative run before the CAS, for the chaos drive's crash accounting.
     [None] = claim lost or nothing under the cap; the caller falls back
     to the single take. *)
  let claim_batch h ~local_key =
    let stripe_i = h.cached_stripe in
    let run =
      Shared_klsm.try_pop_batch
        ~stage:(fun pending -> h.dbuf_pending <- pending)
        ~limit:local_key h.stripe_hs.(stripe_i) h.t.dbuf_cap
    in
    h.dbuf_pending <- [];
    match run with
    | [] -> None
    | (key, value) :: rest ->
        h.dbuf <- rest;
        h.dbuf_len <- List.length rest;
        h.dbuf_age <- 0;
        Obs.incr h.obs c_delete_shared;
        if h.t.sticky_window > 0 then begin
          h.sticky_stripe <- stripe_i;
          h.sticky_left <- h.t.sticky_window
        end;
        (* The winning publish restructured the stripe; drop the candidate
           cache rather than let it point at a just-claimed item. *)
        h.cached <- None;
        Some (key, value)

  (** Listing 5's [delete_min] over the striped shared component: race the
      thread-local minimum against {!stripes_find_min}, test-and-set, retry
      lost races, spy before reporting empty.  A successful shared delete
      opens (or refreshes) the stickiness window on the serving stripe.

      With deletion batching on ([~dbuf:B]), the deletion buffer is
      consulted first: its head was globally minimal under the rank bound
      when claimed, and is served — with zero CASes and zero stripe
      consults beyond the hint loads — whenever neither the local minimum
      nor any stripe hint undercuts it.  A shared win with an empty buffer
      claims a fresh run via {!claim_batch}. *)
  let try_delete_min h =
    dbuf_tick h;
    let rec outer () =
      let rec take_loop () =
        let local = local_min_flushing h in
        let local_key =
          match local with Some it -> Item.key it | None -> max_int
        in
        let dhead =
          match h.dbuf with [] -> max_int | (key, _) :: _ -> key
        in
        let best_known = min local_key dhead in
        let shared =
          if best_known < max_int && stripes_certified_above h best_known
          then begin
            Obs.incr h.obs c_hint_skip;
            None
          end
          else stripes_find_min h
        in
        let shared_key =
          match shared with Some it -> Item.key it | None -> max_int
        in
        if dhead < max_int && dhead <= local_key && dhead <= shared_key then begin
          (* Deletion-buffer hit: the claimed head is still the best known
             candidate (ties go to the buffer — its item is already
             deleted, so serving it costs nothing). *)
          match h.dbuf with
          | (key, value) :: rest ->
              h.dbuf <- rest;
              h.dbuf_len <- h.dbuf_len - 1;
              if h.dbuf_len = 0 then h.dbuf_age <- 0;
              Obs.incr h.obs c_dbuf_hit;
              Obs.incr h.obs c_delete_shared;
              Some (key, value)
          | [] -> assert false
        end
        else
          let candidate, from_shared =
            match (local, shared) with
            | None, sh -> (sh, true)
            | Some it, Some sh when Item.key sh < Item.key it ->
                (Some sh, true)
            | Some _, _ -> (local, false)
          in
          match candidate with
          | None -> None
          | Some item -> (
              match
                if
                  from_shared && h.t.dbuf_cap > 0 && h.dbuf_len = 0
                  && h.cached_stripe >= 0
                then claim_batch h ~local_key
                else None
              with
              | Some kv -> Some kv
              | None ->
                  if Item.take item then begin
                    if from_shared then begin
                      Obs.incr h.obs c_delete_shared;
                      if h.t.sticky_window > 0 && h.cached_stripe >= 0
                      then begin
                        h.sticky_stripe <- h.cached_stripe;
                        h.sticky_left <- h.t.sticky_window
                      end
                    end
                    else Obs.incr h.obs c_delete_local;
                    Some (Item.key item, Item.value item)
                  end
                  else begin
                    Obs.incr h.obs c_take_race;
                    take_loop ()
                  end)
      in
      match take_loop () with
      | Some kv -> Some kv
      | None ->
          Dist_lsm.consolidate h.dist;
          Obs.incr h.obs c_spy_attempt;
          if spy_once h then begin
            Obs.incr h.obs c_spy_success;
            outer ()
          end
          else begin
            Obs.incr h.obs c_delete_empty;
            None
          end
    in
    outer ()

  (** Relaxed peek; advisory on a concurrent queue (see
      {!Klsm.try_find_min}).  Flushes the insertion buffer when a buffered
      key undercuts the local minimum, so no buffered item hides below the
      answer; a deletion-buffer head competes like any candidate (it is
      part of the owner's view, so hiding it would break owner
      exactness). *)
  let try_find_min h =
    let local = local_min_flushing h in
    let local_key =
      match local with Some it -> Item.key it | None -> max_int
    in
    let dhead = match h.dbuf with [] -> max_int | (key, _) :: _ -> key in
    let best_known = min local_key dhead in
    let shared =
      if best_known < max_int && stripes_certified_above h best_known
      then begin
        Obs.incr h.obs c_hint_skip;
        None
      end
      else stripes_find_min h
    in
    let shared_key =
      match shared with Some it -> Item.key it | None -> max_int
    in
    if dhead < max_int && dhead <= local_key && dhead <= shared_key then
      match h.dbuf with
      | (key, value) :: _ -> Some (key, value)
      | [] -> assert false
    else
      let candidate =
        match (local, shared) with
        | None, sh -> sh
        | Some it, Some sh when Item.key sh < Item.key it -> Some sh
        | Some _, _ -> local
      in
      Option.map (fun it -> (Item.key it, Item.value it)) candidate

  (** Batched delete-min: a plain {!try_delete_min} loop — with deletion
      batching on, the first iteration claims a run and the rest of the
      batch drains the buffer, so the whole call still costs one publish
      CAS per up-to-B items (see {!Pq_intf.S.try_delete_min_batch}). *)
  let try_delete_min_batch h n =
    let rec go acc got =
      if got >= n then List.rev acc
      else
        match try_delete_min h with
        | Some kv -> go (kv :: acc) (got + 1)
        | None -> List.rev acc
    in
    go [] 0

  (** Meld (§4.5, non-linearizable; see {!Klsm.meld}): adopt every block of
      [src] into the queue behind [h], through [h]'s home stripe.  Like the
      rest of meld's exclusive-access contract, insertion buffers live in
      {e handles}, not in [src]: callers must {!flush_buffer} the source's
      handles first or those items stay behind. *)
  let meld h ~src =
    let adopt block =
      if not (Block.is_empty block) then begin
        let b = Block.copy ~alive:h.t.alive block (Block.level block) in
        b.Block.filter <- Klsm_primitives.Bloom.full;
        let b = Block.shrink ~alive:h.t.alive b in
        if not (Block.is_empty b) then spill_to_home h b
      end
    in
    Array.iter
      (fun stripe -> List.iter adopt (Shared_klsm.steal_all stripe))
      src.stripes;
    Array.iter
      (fun slot ->
        match B.get slot with
        | Some d -> List.iter adopt (Dist_lsm.steal_all d)
        | None -> ())
      src.dists

  (** Force a cleanup of the thread-local component (lazy deletion can
      strand condemned items). *)
  let consolidate_local h = Dist_lsm.consolidate h.dist

  (** Items currently held, counting not-yet-cleaned deleted ones.  Items
      sitting in per-handle insertion buffers are not visible from [t];
      the count may under-report by at most T * B. *)
  let approximate_size t =
    let acc = ref 0 in
    Array.iter
      (fun stripe -> acc := !acc + Shared_klsm.approximate_size stripe)
      t.stripes;
    Array.iter
      (fun slot ->
        match B.get slot with
        | Some d -> acc := !acc + Dist_lsm.total_filled d
        | None -> ())
      t.dists;
    !acc

  (** Insert a block directly into the home stripe (recovery path:
      [Spill.recover] links rebuilt cold blocks through this; the policy
      passes already-spilled blocks through untouched). *)
  let adopt_block h block = spill_to_home h block

  (* Internal accessors for white-box tests and the chaos drive. *)
  let internal_stripes t = t.stripes
  let internal_stripe_handles h = h.stripe_hs
  let internal_dist h = h.dist
  let internal_buffered h = h.buf
  let internal_dbuf h = h.dbuf
  let internal_dbuf_pending h = h.dbuf_pending
  let internal_sticky_left h = h.sticky_left
  let internal_sticky_stripe h = h.sticky_stripe
  let internal_active t = active_stripes t
end

(** The deployment instantiation on OCaml domains. *)
module Default = Make (Klsm_backend.Real)

(* Static conformance: the sharded queue implements the common interface. *)
module _ : Pq_intf.S = Default
