(** The contention-striped k-LSM: the combined queue of {!Klsm} with its
    single shared component split into [S] independent {!Shared_klsm}
    stripes (DESIGN.md §12).

    The paper's shared k-LSM serializes every spill and consolidation
    through one atomic [shared] pointer (§4.1, Listing 3); at high thread
    counts that CAS convoy — not thread-local work — caps throughput
    (Gruber/Träff/Wimmer, arXiv:1603.05047).  This module removes the
    convoy the way MultiQueue-style designs do (arXiv:1509.07053), but
    inside the k-LSM's bounded-relaxation contract:

    - the global budget [k] is partitioned as [ceil(k / S)] per stripe, so
      each stripe is an ordinary shared k-LSM with a smaller relaxation;
    - every thread has a {e home} stripe its spills go to (preserving the
      per-stripe publication ordering Listing 4 relies on);
    - [find_min] races the thread-local DistLSM minimum against the home
      stripe and — only when a stripe's {!Shared_klsm.min_hint} says it
      might hold something smaller — the remaining stripes (scanned from
      a rotating offset so ties don't starve), which is what keeps the
      rank bound rho <= (T + S) * ceil(k / S) provable rather than
      probabilistic (derivation in DESIGN.md §12); when every hint sits
      at or above the local candidate the race is skipped outright — S
      atomic loads serve the common local-delete path;
    - a per-thread {e candidate cache} reuses the last raced winner until
      its deletion flag is seen set or some stripe publishes state that
      could beat it — amortizing the cross-stripe race across consecutive
      delete-mins exactly as Listing 3's [observed] field amortizes
      snapshot refreshes;
    - failed snapshot CASes feed a per-stripe decorrelated-jitter
      {!Klsm_primitives.Backoff}, and a burst of consecutive failures on
      the home stripe triggers {e migration} to the next stripe.

    With [S = 1] the structure degenerates to the paper's k-LSM (one
    stripe, no second chance, no migration). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Block = Block.Make (B)
  module Block_array = Block_array.Make (B)
  module Shared_klsm = Shared_klsm.Make (B)
  module Dist_lsm = Dist_lsm.Make (B)
  module Backoff = Klsm_primitives.Backoff
  module Xoshiro = Klsm_primitives.Xoshiro
  module Tabular_hash = Klsm_primitives.Tabular_hash
  module Obs = Klsm_obs.Obs

  let name = "klsm-sharded"

  (* Observability (lib/obs; docs/METRICS.md).  The composition layer
     reuses the klsm.* names of {!Klsm} (same Listing 5 roles); the
     stripe.* family is specific to the sharded design. *)
  let c_take_race = Obs.counter "klsm.take_race"
  let c_delete_local = Obs.counter "klsm.delete_local"
  let c_delete_shared = Obs.counter "klsm.delete_shared"
  let c_delete_empty = Obs.counter "klsm.delete_empty"
  let c_spy_attempt = Obs.counter "klsm.spy_attempt"
  let c_spy_success = Obs.counter "klsm.spy_success"
  let c_stripe_cas_fail = Obs.counter "stripe.cas_fail"
  let c_migrate = Obs.counter "stripe.migrate"
  let c_cache_hit = Obs.counter "stripe.cache_hit"
  let c_cache_miss = Obs.counter "stripe.cache_miss"
  let c_hint_consult = Obs.counter "stripe.hint_consult"
  let c_hint_skip = Obs.counter "stripe.hint_skip"

  (** Per-stripe relaxation: the global budget split evenly, rounded up so
      S stripes never under-spend the contract ([S * ceil(k/S) >= k]). *)
  let stripe_k ~k ~shards = (k + shards - 1) / shards

  (** Consecutive home-stripe CAS failures that trigger migration.  Failures
      within one publish attempt burst are the signature of a convoy; 8 of
      them in a row mean at least 8 other threads hammered the same stripe
      while we starved. *)
  let migrate_threshold = 8

  (** Durability hook; same shape as {!Klsm.Make.spill_policy} (the types
      are equal through the applicative functor). *)
  type 'v spill_policy =
    alive:('v Item.t -> bool) -> tid:int -> 'v Block.t -> 'v Block.t

  type 'v t = {
    stripes : 'v Shared_klsm.t array;
    dists : 'v Dist_lsm.t option B.atomic array;  (** victims, §4.3 *)
    num_threads : int;
    num_stripes : int;
    k : int B.atomic;  (** global relaxation budget *)
    seed : int;
    hasher : Tabular_hash.t;
    alive : 'v Item.t -> bool;
    spill_max_level : int option;
        (** ablation override of the §4.3 spill threshold *)
    spill_policy : 'v spill_policy option;
        (** durability hook (lib/store); see {!Klsm.Make.spill_policy} *)
    obs : Obs.sheet;
  }

  type 'v handle = {
    t : 'v t;
    tid : int;
    dist : 'v Dist_lsm.t;
    spill_tx : 'v Block.t -> 'v Block.t;
        (** the spill policy pre-applied to this thread *)
    stripe_hs : 'v Shared_klsm.handle array;  (** one handle per stripe *)
    mutable home : int;  (** current home stripe (spill target) *)
    mutable rr : int;  (** second-chance rotation counter *)
    mutable fail_streak : int;
        (** consecutive snapshot-CAS failures on the home stripe *)
    mutable migrate_pending : bool;
        (** latched when [fail_streak] crossed {!migrate_threshold}; acted
            on after the in-flight publish completes (a publish retries on
            its stripe until it wins — migration applies to the next
            spill) *)
    backoffs : Backoff.t array;
        (** per-stripe decorrelated-jitter backoff, driven by the
            {!Shared_klsm} CAS hooks *)
    mutable cached : 'v Item.t option;  (** delete-min candidate cache *)
    mutable cached_key : int;
    cached_ptrs : 'v Block_array.t option array;
        (** per-stripe published-array tokens observed when the cache was
            filled; physical inequality + a hint below [cached_key] is the
            only thing that can invalidate a still-alive cached candidate *)
    rng : Xoshiro.t;
    obs : Obs.handle;
    pool : 'v Block.Pool.t;
  }

  let create_with ?(seed = 1) ?(k = 256) ?(shards = 4) ?should_delete
      ?on_lazy_delete ?spill_max_level ?spill_policy
      ?(local_ordering = true) ~num_threads () =
    if num_threads < 1 then
      invalid_arg "Sharded_klsm.create: num_threads < 1";
    if shards < 1 then invalid_arg "Sharded_klsm.create: shards < 1";
    if shards > k then
      invalid_arg "Sharded_klsm.create: shards > k (a stripe needs a budget)";
    let hasher = Tabular_hash.create ~seed:(seed lxor 0x5eed) in
    let alive =
      match should_delete with
      | None -> fun it -> not (Item.is_taken it)
      | Some p ->
          (* Identical to {!Klsm.create_with}: the [taken] flag claims a
             condemned item before the hook runs, so [on_lazy_delete] fires
             exactly once per item. *)
          let hook =
            match on_lazy_delete with Some f -> f | None -> fun _ _ -> ()
          in
          fun it ->
            if Item.is_taken it then false
            else if p (Item.key it) (Item.value it) then begin
              if Item.take it then hook (Item.key it) (Item.value it);
              false
            end
            else true
    in
    let kp = stripe_k ~k ~shards in
    {
      stripes =
        Array.init shards (fun _ ->
            Shared_klsm.create ~k:kp ~local_ordering ~maintain_hint:true
              ~hasher ~alive ());
      dists = Array.init num_threads (fun _ -> B.make None);
      num_threads;
      num_stripes = shards;
      k = B.make k;
      seed;
      hasher;
      alive;
      spill_max_level;
      spill_policy;
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()

  let get_k t = B.get t.k
  let num_stripes t = t.num_stripes

  (** Reconfigure the global budget; re-partitioned across the stripes, it
      takes effect on each stripe's next pivot recomputation. *)
  let set_k t k =
    if k < t.num_stripes then invalid_arg "Sharded_klsm.set_k: k < shards";
    B.set t.k k;
    let kp = stripe_k ~k ~shards:t.num_stripes in
    Array.iter (fun s -> Shared_klsm.set_k s kp) t.stripes

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid =
    if tid < 0 || tid >= t.num_threads then
      invalid_arg "Sharded_klsm.register: tid";
    let rng = Xoshiro.create ~seed:(t.seed + (1000003 * (tid + 1))) in
    let obs = Obs.handle t.obs ~tid in
    let pool = Block.Pool.create ~obs () in
    let dist =
      Dist_lsm.create ~obs ~pool ~tid ~hasher:t.hasher ~alive:t.alive ()
    in
    B.set t.dists.(tid) (Some dist);
    let stripe_hs =
      Array.map
        (fun s -> Shared_klsm.register ~obs ~pool s ~tid ~rng:(Xoshiro.split rng))
        t.stripes
    in
    let h =
      {
        t;
        tid;
        dist;
        spill_tx =
          (match t.spill_policy with
          | None -> Fun.id
          | Some p -> fun block -> p ~alive:t.alive ~tid block);
        stripe_hs;
        home = tid mod t.num_stripes;
        rr = 0;
        fail_streak = 0;
        migrate_pending = false;
        backoffs =
          Array.init t.num_stripes (fun _ ->
              Backoff.create ~jitter:(Xoshiro.split rng) ());
        cached = None;
        cached_key = max_int;
        cached_ptrs = Array.make t.num_stripes None;
        rng;
        obs;
        pool;
      }
    in
    (* Contention hooks: every failed snapshot CAS on stripe [i] backs the
       thread off (decorrelated jitter, so losers of the same race stop
       retrying in lockstep); failures on the current home stripe also feed
       the migration detector. *)
    Array.iteri
      (fun i sh ->
        sh.Shared_klsm.on_cas_fail <-
          (fun () ->
            Obs.incr obs c_stripe_cas_fail;
            if i = h.home then begin
              h.fail_streak <- h.fail_streak + 1;
              if h.fail_streak >= migrate_threshold then
                h.migrate_pending <- true
            end;
            Backoff.once h.backoffs.(i) ~relax:B.relax_n);
        sh.Shared_klsm.on_cas_success <-
          (fun () ->
            if i = h.home then h.fail_streak <- 0;
            Backoff.reset h.backoffs.(i)))
      stripe_hs;
    h

  (* Spill a block to the home stripe; act on a pending migration after the
     publish completed (a {!Shared_klsm.insert} retries on its stripe until
     it wins, so the decision applies to the next spill). *)
  let spill_to_home h block =
    let block = h.spill_tx block in
    B.fault_point "sharded.spill.publish";
    Shared_klsm.insert h.stripe_hs.(h.home) block;
    if h.migrate_pending && h.t.num_stripes > 1 then begin
      B.fault_point "sharded.migrate";
      h.migrate_pending <- false;
      h.fail_streak <- 0;
      h.home <- (h.home + 1) mod h.t.num_stripes;
      Obs.incr h.obs c_migrate
    end
    else h.migrate_pending <- false

  (** §4.3 [insert] with the partitioned spill rule: local blocks spill at
      the level bound of the {e per-stripe} budget ceil(k/S), so each
      thread-local LSM holds at most ceil(k/S) items — the per-term bound
      the rho <= (T + S) * ceil(k/S) derivation charges for other threads'
      local components (DESIGN.md §12). *)
  let insert h key value =
    if key < 0 then invalid_arg "Sharded_klsm.insert: negative key";
    let item = Item.make key value in
    let max_level =
      match h.t.spill_max_level with
      | Some l -> l
      | None ->
          Dist_lsm.max_level_for_k
            (stripe_k ~k:(B.get h.t.k) ~shards:h.t.num_stripes)
    in
    Dist_lsm.insert h.dist item ~max_level ~spill:(fun b -> spill_to_home h b)

  (** Bulk insertion (one sorted block, one stripe publish); see
      {!Klsm.insert_batch}. *)
  let insert_batch h pairs =
    match Array.length pairs with
    | 0 -> ()
    | 1 ->
        let key, value = pairs.(0) in
        insert h key value
    | n ->
        Array.iter
          (fun (key, _) ->
            if key < 0 then
              invalid_arg "Sharded_klsm.insert_batch: negative key")
          pairs;
        let items =
          Array.map (fun (key, value) -> Item.make key value) pairs
        in
        Array.sort (fun a b -> compare (Item.key b) (Item.key a)) items;
        let level = Klsm_primitives.Bits.ceil_log2 n in
        let block = Block.create_with_exemplar ~pool:h.pool level items.(0) in
        block.Block.filter <-
          Klsm_primitives.Bloom.singleton ~hasher:h.t.hasher h.tid;
        Array.iter (fun it -> Block.append ~alive:h.t.alive block it) items;
        spill_to_home h block

  (* ---- the striped find_min race ---- *)

  (* Is the cached candidate still a valid answer?  It must be alive, and
     every stripe must either be physically unchanged since the cache was
     filled (its pointer token matches; logical deletions do not move the
     pointer and only shrink the smaller-than set) or hint that it holds
     nothing below the cached key.  S atomic loads replace two-plus full
     snapshot consults. *)
  let cache_valid h =
    match h.cached with
    | None -> false
    | Some it ->
        h.t.alive it
        &&
        let s = h.t.num_stripes in
        let ok = ref true in
        let j = ref 0 in
        while !ok && !j < s do
          let stripe = h.t.stripes.(!j) in
          if
            Shared_klsm.peek_shared stripe != h.cached_ptrs.(!j)
            && Shared_klsm.min_hint stripe < h.cached_key
          then ok := false;
          incr j
        done;
        !ok

  (* The full race: the home stripe, then every other stripe whose min
     hint undercuts the best so far (scanned from a rotating offset).
     Every stripe is thus either consulted (candidate within its
     ceil(k/S) relaxation) or certified by its hint to hold nothing
     smaller — the case split the DESIGN §12 rank bound sums over. *)
  let race h =
    let s = h.t.num_stripes in
    (* Observation tokens first: a publish landing between the token read
       and the consult can only make the cache conservatively stale. *)
    for j = 0 to s - 1 do
      h.cached_ptrs.(j) <- Shared_klsm.peek_shared h.t.stripes.(j)
    done;
    let best = ref None in
    let best_key = ref max_int in
    let consult i =
      match Shared_klsm.find_min h.stripe_hs.(i) with
      | None -> ()
      | Some it ->
          let key = Item.key it in
          if Option.is_none !best || key < !best_key then begin
            best := Some it;
            best_key := key
          end
    in
    consult h.home;
    if s > 1 then begin
      (* Rotating scan offset: when several stripes undercut the current
         best they are consulted in a different order each race, so no
         single stripe permanently wins the ties. *)
      h.rr <- h.rr + 1;
      let start = h.rr mod s in
      for d = 0 to s - 1 do
        let j = (start + d) mod s in
        if j <> h.home && Shared_klsm.min_hint h.t.stripes.(j) < !best_key
        then begin
          Obs.incr h.obs c_hint_consult;
          consult j
        end
      done
    end;
    h.cached <- !best;
    h.cached_key <- !best_key;
    !best

  (** Relaxed minimum of the striped shared component (cache first, race on
      a miss).  The returned item may be taken concurrently; the combined
      delete-min loop handles that. *)
  let stripes_find_min h =
    if cache_valid h then begin
      Obs.incr h.obs c_cache_hit;
      h.cached
    end
    else begin
      Obs.incr h.obs c_cache_miss;
      race h
    end

  (* Do the hints certify that no stripe holds anything below [key]?  When
     they do, a local candidate at [key] needs no stripe consult at all —
     S atomic loads replace snapshot copies on the common
     serve-locally path (the split §4.3's design argument is about). *)
  let stripes_certified_above h key =
    let s = h.t.num_stripes in
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < s do
      if Shared_klsm.min_hint h.t.stripes.(!j) < key then ok := false;
      incr j
    done;
    !ok

  (* Spy on one random other thread (Listing 5's fallback). *)
  let spy_once h =
    if h.t.num_threads <= 1 then false
    else begin
      let victim_tid =
        let r = Xoshiro.int h.rng (h.t.num_threads - 1) in
        if r >= h.tid then r + 1 else r
      in
      match B.get h.t.dists.(victim_tid) with
      | None -> false
      | Some victim -> Dist_lsm.spy h.dist ~victim
    end

  (** Listing 5's [delete_min] over the striped shared component: race the
      thread-local minimum against {!stripes_find_min}, test-and-set, retry
      lost races, spy before reporting empty. *)
  let try_delete_min h =
    let rec outer () =
      let rec take_loop () =
        let local = Dist_lsm.find_min h.dist in
        let shared =
          match local with
          | Some it when stripes_certified_above h (Item.key it) ->
              Obs.incr h.obs c_hint_skip;
              None
          | _ -> stripes_find_min h
        in
        let candidate, from_shared =
          match (local, shared) with
          | None, sh -> (sh, true)
          | Some it, Some sh when Item.key sh < Item.key it -> (Some sh, true)
          | Some _, _ -> (local, false)
        in
        match candidate with
        | None -> None
        | Some item ->
            if Item.take item then begin
              Obs.incr h.obs
                (if from_shared then c_delete_shared else c_delete_local);
              Some (Item.key item, Item.value item)
            end
            else begin
              Obs.incr h.obs c_take_race;
              take_loop ()
            end
      in
      match take_loop () with
      | Some kv -> Some kv
      | None ->
          Dist_lsm.consolidate h.dist;
          Obs.incr h.obs c_spy_attempt;
          if spy_once h then begin
            Obs.incr h.obs c_spy_success;
            outer ()
          end
          else begin
            Obs.incr h.obs c_delete_empty;
            None
          end
    in
    outer ()

  (** Relaxed peek; advisory on a concurrent queue (see
      {!Klsm.try_find_min}). *)
  let try_find_min h =
    let local = Dist_lsm.find_min h.dist in
    let shared =
      match local with
      | Some it when stripes_certified_above h (Item.key it) ->
          Obs.incr h.obs c_hint_skip;
          None
      | _ -> stripes_find_min h
    in
    let candidate =
      match (local, shared) with
      | None, sh -> sh
      | Some it, Some sh when Item.key sh < Item.key it -> Some sh
      | Some _, _ -> local
    in
    Option.map (fun it -> (Item.key it, Item.value it)) candidate

  (** Meld (§4.5, non-linearizable; see {!Klsm.meld}): adopt every block of
      [src] into the queue behind [h], through [h]'s home stripe. *)
  let meld h ~src =
    let adopt block =
      if not (Block.is_empty block) then begin
        let b = Block.copy ~alive:h.t.alive block (Block.level block) in
        b.Block.filter <- Klsm_primitives.Bloom.full;
        let b = Block.shrink ~alive:h.t.alive b in
        if not (Block.is_empty b) then spill_to_home h b
      end
    in
    Array.iter
      (fun stripe -> List.iter adopt (Shared_klsm.steal_all stripe))
      src.stripes;
    Array.iter
      (fun slot ->
        match B.get slot with
        | Some d -> List.iter adopt (Dist_lsm.steal_all d)
        | None -> ())
      src.dists

  (** Force a cleanup of the thread-local component (lazy deletion can
      strand condemned items). *)
  let consolidate_local h = Dist_lsm.consolidate h.dist

  (** Items currently held, counting not-yet-cleaned deleted ones. *)
  let approximate_size t =
    let acc = ref 0 in
    Array.iter
      (fun stripe -> acc := !acc + Shared_klsm.approximate_size stripe)
      t.stripes;
    Array.iter
      (fun slot ->
        match B.get slot with
        | Some d -> acc := !acc + Dist_lsm.total_filled d
        | None -> ())
      t.dists;
    !acc

  (** Insert a block directly into the home stripe (recovery path:
      [Spill.recover] links rebuilt cold blocks through this; the policy
      passes already-spilled blocks through untouched). *)
  let adopt_block h block = spill_to_home h block

  (* Internal accessors for white-box tests and the chaos drive. *)
  let internal_stripes t = t.stripes
  let internal_dist h = h.dist
end

(** The deployment instantiation on OCaml domains. *)
module Default = Make (Klsm_backend.Real)

(* Static conformance: the sharded queue implements the common interface. *)
module _ : Pq_intf.S = Default
