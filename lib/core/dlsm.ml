(** The standalone distributed LSM priority queue — "DLSM" in Figure 3:
    the k-LSM without its shared component, i.e. purely thread-local LSMs
    plus spying (§4.2).  It provides local ordering semantics only (no
    global rho bound), in exchange for embarrassingly-parallel scaling. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Dist_lsm = Dist_lsm.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Tabular_hash = Klsm_primitives.Tabular_hash
  module Obs = Klsm_obs.Obs

  let name = "dlsm"

  (* Observability (lib/obs; docs/METRICS.md).  The component-level events
     (merges, spies) are counted inside {!Dist_lsm}; these cover the
     composition layer. *)
  let c_take_race = Obs.counter "dlsm.take_race"
  let c_spy_attempt = Obs.counter "dlsm.spy_attempt"
  let c_spy_success = Obs.counter "dlsm.spy_success"
  let c_delete_empty = Obs.counter "dlsm.delete_empty"

  type 'v t = {
    dists : 'v Dist_lsm.t option B.atomic array;
    num_threads : int;
    seed : int;
    hasher : Tabular_hash.t;
    alive : 'v Item.t -> bool;
    obs : Obs.sheet;
  }

  type 'v handle = {
    t : 'v t;
    tid : int;
    dist : 'v Dist_lsm.t;
    rng : Xoshiro.t;
    obs : Obs.handle;
  }

  let create_with ?(seed = 1) ?should_delete ?on_lazy_delete ~num_threads () =
    if num_threads < 1 then invalid_arg "Dlsm.create: num_threads < 1";
    let alive =
      match should_delete with
      | None -> fun it -> not (Item.is_taken it)
      | Some p ->
          (* Exactly-once drop notification via the [taken] CAS; see the
             same construction in {!Klsm.create_with}. *)
          let hook =
            match on_lazy_delete with Some f -> f | None -> fun _ _ -> ()
          in
          fun it ->
            if Item.is_taken it then false
            else if p (Item.key it) (Item.value it) then begin
              if Item.take it then hook (Item.key it) (Item.value it);
              false
            end
            else true
    in
    {
      dists = Array.init num_threads (fun _ -> B.make None);
      num_threads;
      seed;
      hasher = Tabular_hash.create ~seed:(seed lxor 0x5eed);
      alive;
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid =
    if tid < 0 || tid >= t.num_threads then invalid_arg "Dlsm.register: tid";
    let rng = Xoshiro.create ~seed:(t.seed + (1000003 * (tid + 1))) in
    let obs = Obs.handle t.obs ~tid in
    let dist = Dist_lsm.create ~obs ~tid ~hasher:t.hasher ~alive:t.alive () in
    B.set t.dists.(tid) (Some dist);
    { t; tid; dist; rng; obs }

  let insert h key value =
    if key < 0 then invalid_arg "Dlsm.insert: negative key";
    (* Nothing ever spills: blocks may grow to any level. *)
    Dist_lsm.insert h.dist (Item.make key value) ~max_level:max_int
      ~spill:(fun _ -> assert false)

  (* Batched insert (Pq_intf): the thread-local LSM already amortizes
     merges across consecutive inserts, so the fallback loop is the bulk
     path. *)
  let insert_batch h pairs =
    Array.iter (fun (key, value) -> insert h key value) pairs

  let spy_once h =
    if h.t.num_threads <= 1 then false
    else begin
      let victim_tid =
        let r = Xoshiro.int h.rng (h.t.num_threads - 1) in
        if r >= h.tid then r + 1 else r
      in
      match B.get h.t.dists.(victim_tid) with
      | None -> false
      | Some victim -> Dist_lsm.spy h.dist ~victim
    end

  let try_delete_min h =
    let rec outer () =
      let rec take_loop () =
        match Dist_lsm.find_min h.dist with
        | None -> None
        | Some item ->
            if Item.take item then Some (Item.key item, Item.value item)
            else begin
              Obs.incr h.obs c_take_race;
              take_loop ()
            end
      in
      match take_loop () with
      | Some kv -> Some kv
      | None ->
          (* Spy must start from an empty local LSM (§4.2): clean out
             logically deleted leftovers first. *)
          Dist_lsm.consolidate h.dist;
          Obs.incr h.obs c_spy_attempt;
          if spy_once h then begin
            Obs.incr h.obs c_spy_success;
            outer ()
          end
          else begin
            Obs.incr h.obs c_delete_empty;
            None
          end
    in
    outer ()

  (* Batched delete (Pq_intf): the distributed LSM has no shared component
     to claim a run from; plain loop. *)
  let try_delete_min_batch h n =
    let rec go acc got =
      if got >= n then List.rev acc
      else
        match try_delete_min h with
        | Some kv -> go (kv :: acc) (got + 1)
        | None -> List.rev acc
    in
    go [] 0

  let approximate_size t =
    let acc = ref 0 in
    Array.iter
      (fun slot ->
        match B.get slot with
        | Some d -> acc := !acc + Dist_lsm.total_filled d
        | None -> ())
      t.dists;
    !acc
end

module Default = Make (Klsm_backend.Real)
module _ : Pq_intf.S = Default
