(** The distributed LSM priority queue (paper §4.2 and Listing 4).

    One instance per thread; only the owning thread mutates it, other
    threads read it non-destructively through [spy].  Consequently the block
    slots and [size] are atomics written in the publication order of
    Listing 4: a merged block is written into its slot {e before} [size]
    shrinks, so every item stays reachable to spies throughout (items may
    be observed twice during a merge, which is harmless because deletion is
    a test-and-set on the item itself).

    The [max_level] bound implements §4.3's spill rule: a merged block whose
    level would exceed [max_level] leaves the distributed LSM and is bulk-
    inserted into the shared k-LSM by the [spill] callback.  With
    [max_level = floor(log2 k) - 1], the total capacity of a thread-local
    LSM is [2^(max_level+1) - 1 <= k] items, the bound Lemma 2's
    rho = T*k relies on, while spilled blocks carry ~k/2..k items each —
    the batching that removes the shared bottleneck (§4.1). *)

(** Test-only teeth check for the chaos suite (shared by every functor
    instance): when set, {!Make.insert} publishes in the {e wrong} order —
    [size] before the merged block — recreating the bug Listing 4's
    ordering exists to prevent.  A crash injected between the two writes
    then permanently loses the items of the consumed blocks, which the
    conservation oracle of [bin/chaos.exe --teeth] must catch.  Never set
    outside tests. *)
let test_only_flip_publication_order = ref false

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Block = Block.Make (B)
  module Bloom = Klsm_primitives.Bloom
  module Xoshiro = Klsm_primitives.Xoshiro
  module Obs = Klsm_obs.Obs

  (* Observability (lib/obs; docs/METRICS.md).  The handle is the owning
     thread's, so every event lands in that thread's shard. *)
  let c_merge = Obs.counter "dist.merge"
  let c_spill = Obs.counter "dist.spill"
  let c_spill_items = Obs.counter "dist.spill_items"
  let c_consolidate = Obs.counter "dist.consolidate"
  let c_spy_blocks = Obs.counter "dist.spy_blocks"
  let c_spy_items = Obs.counter "dist.spy_items"
  let s_consolidate = Obs.span "dist.consolidate"

  (* 2^40 items per thread-local LSM is beyond any conceivable run. *)
  let max_levels = 40

  type 'v t = {
    blocks : 'v Block.t option B.atomic array;
    size : int B.atomic;
    tid : int;
    filter : Bloom.t;  (** singleton filter stamped on created blocks *)
    alive : 'v Item.t -> bool;
    obs : Obs.handle;  (** the owning thread's observability shard *)
    pool : 'v Block.Pool.t;
        (** the owning thread's block pool (§4.4 reuse); may be shared with
            the same thread's other components ({!Klsm.register}) *)
  }

  let create ?(obs = Obs.null_handle) ?pool ~tid ~hasher ~alive () =
    let pool =
      match pool with Some p -> p | None -> Block.Pool.create ~obs ()
    in
    {
      blocks = Array.init max_levels (fun _ -> B.make None);
      size = B.make 0;
      tid;
      filter = Bloom.singleton ~hasher tid;
      alive;
      obs;
      pool;
    }

  let tid t = t.tid
  let size t = B.get t.size

  let block_at t i = B.get t.blocks.(i)

  (** Spill threshold for relaxation parameter [k]: the largest level a
      local block may have.  [-1] means "nothing stays local" (k = 0 or 1:
      every insert goes straight to the shared component). *)
  let max_level_for_k k =
    if k <= 1 then -1 else Klsm_primitives.Bits.floor_log2 k - 1

  (** Total number of logically-held items (may count deleted ones). *)
  let total_filled t =
    let n = B.get t.size in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      match B.get t.blocks.(i) with
      | Some b -> acc := !acc + Block.filled b
      | None -> ()
    done;
    !acc

  (** Listing 4's [insert], extended with the spill rule of §4.3.  The merge
      loop walks from the back (smallest levels); old blocks stay reachable
      until the merged block replaces them. *)
  let insert t item ~max_level ~spill =
    let alive = t.alive in
    let pool = t.pool in
    let b = ref (Block.singleton ~pool ~filter:t.filter item) in
    let i = ref (B.get t.size) in
    let continue_merge = ref true in
    while !continue_merge && !i > 0 do
      match B.get t.blocks.(!i - 1) with
      | None -> continue_merge := false
      | Some prev ->
          if Block.level prev <= Block.level !b then begin
            Obs.incr t.obs c_merge;
            (* [merge] retires the private cascade intermediate [!b] into
               the pool; [prev] is published and stays untouched. *)
            b := Block.shrink ~pool ~alive (Block.merge ~pool ~alive prev !b);
            decr i
          end
          else continue_merge := false
    done;
    if Block.is_empty !b then begin
      (* Everything merged away (all items dead): just drop the blocks we
         consumed.  The never-published merge result goes back to the
         pool. *)
      Block.retire ~pool !b;
      B.set t.size !i
    end
    else if Block.level !b > max_level then begin
      (* Spill: hand the merged block to the shared component FIRST so its
         items never become unreachable, then forget the consumed blocks. *)
      Obs.incr t.obs c_spill;
      Obs.add t.obs c_spill_items (Block.filled !b);
      Block.publish !b;
      spill !b;
      B.fault_point "dist.insert.spill";
      B.set t.size !i
    end
    else if !test_only_flip_publication_order then begin
      (* Deliberately wrong order (teeth check, see the flag above): a crash
         at the fault point strands the consumed blocks' items in slots the
         shrunken [size] no longer covers. *)
      Block.publish !b;
      B.set t.size (!i + 1);
      B.fault_point "dist.insert.pre_size";
      B.set t.blocks.(!i) (Some !b)
    end
    else begin
      (* Publish the merged block, then shrink [size]: redundant old blocks
         only become unreachable after the replacement is visible. *)
      Block.publish !b;
      B.set t.blocks.(!i) (Some !b);
      B.fault_point "dist.insert.pre_size";
      B.set t.size (!i + 1)
    end

  (** Minimal alive item across the thread-local blocks, cleaning dead
      tails opportunistically (the owner may decrement [filled] in place;
      spies tolerate stale values).  [None] iff no alive item remains. *)
  let find_min t =
    let alive = t.alive in
    let n = B.get t.size in
    (* Track the running best's key as a raw int: the loop never compares
       options structurally (polymorphic compare was the old hot-loop
       cost). *)
    let best = ref None in
    let best_key = ref max_int in
    for i = 0 to n - 1 do
      match B.get t.blocks.(i) with
      | None -> ()
      | Some b -> (
          match Block.peek_min ~alive b with
          | None -> ()
          | Some it ->
              let key = Item.key it in
              if Option.is_none !best || key < !best_key then begin
                best := Some it;
                best_key := key
              end)
    done;
    !best

  (** Rebuild the LSM without dead items, merging underflowing blocks.  The
      rebuilt blocks are published slot-by-slot before [size] shrinks, so
      spies never lose reachability (§4.2: consolidate "will only remove
      references to blocks being consolidated after the consolidated blocks
      are made available"). *)
  let consolidate t =
    Obs.incr t.obs c_consolidate;
    let t0 = Obs.span_begin t.obs in
    let alive = t.alive in
    let pool = t.pool in
    let n = B.get t.size in
    let survivors = ref [] in
    for i = n - 1 downto 0 do
      match B.get t.blocks.(i) with
      | None -> ()
      | Some b -> survivors := b :: !survivors
    done;
    (* [survivors] is largest level first; fold with a stack whose head is
       the smallest level so far, merging level collisions upward.  All
       stack blocks are private rebuilt copies, so the cascade's merges
       recycle their inputs through the pool. *)
    let rec go stack b =
      if Block.is_empty b then begin
        Block.retire ~pool b;
        stack
      end
      else
        match stack with
        | top :: rest when Block.level top <= Block.level b ->
            go rest (Block.shrink ~pool ~alive (Block.merge ~pool ~alive top b))
        | _ -> b :: stack
    in
    let stack =
      List.fold_left
        (fun stack b ->
          (* Copy first: unlike [shrink], a copy filters dead items out of
             the middle of the block too, so consolidate is a full
             cleanup.  The published original is never recycled. *)
          let b =
            Block.shrink ~pool ~alive
              (Block.copy ~pool ~alive b (Block.level b))
          in
          go stack b)
        [] !survivors
    in
    let arr = Array.of_list (List.rev stack) in
    let m = Array.length arr in
    for i = 0 to m - 1 do
      Block.publish arr.(i);
      B.set t.blocks.(i) (Some arr.(i))
    done;
    B.fault_point "dist.consolidate.pre_size";
    B.set t.size m;
    Obs.span_end t.obs s_consolidate t0

  (** Fraction of logically-held items that are dead; drives the lazy
      consolidation heuristic in the combined queue. *)
  let dead_fraction t =
    let total = total_filled t in
    if total = 0 then 0.
    else begin
      let alive_count = ref 0 in
      let n = B.get t.size in
      for i = 0 to n - 1 do
        match B.get t.blocks.(i) with
        | Some b -> alive_count := !alive_count + Block.count_alive ~alive:t.alive b
        | None -> ()
      done;
      1. -. (float_of_int !alive_count /. float_of_int total)
    end

  (** Listing 4's non-destructive [spy]: copy the victim's blocks (alive
      items only) into [t], keeping only blocks that preserve the strictly-
      decreasing level invariant — the victim may mutate concurrently, and
      skipping a block is always safe because spy gives no guarantees about
      other threads' items.  Returns [true] if anything was copied.
      Precondition: [t] is empty (only called then, per §4.2). *)
  let spy t ~victim =
    let alive = t.alive in
    let vn = B.get victim.size in
    let n = ref (B.get t.size) in
    let copied = ref 0 in
    for i = 0 to min vn max_levels - 1 do
      B.fault_point "dist.spy.block";
      match B.get victim.blocks.(i) with
      | None -> ()
      | Some b ->
          let lvl = Block.level b in
          let ok =
            !n = 0
            ||
            match B.get t.blocks.(!n - 1) with
            | Some last -> lvl < Block.level last
            | None -> false
          in
          if ok then begin
            (* Copies draw from the spying thread's own pool ([t] is ours;
               [victim] is only read). *)
            let copy = Block.copy ~pool:t.pool ~alive b lvl in
            let copy = Block.shrink ~pool:t.pool ~alive copy in
            if Block.is_empty copy then Block.retire ~pool:t.pool copy
            else begin
              Block.publish copy;
              B.set t.blocks.(!n) (Some copy);
              incr n;
              B.set t.size !n;
              Obs.incr t.obs c_spy_blocks;
              copied := !copied + Block.filled copy
            end
          end
    done;
    Obs.add t.obs c_spy_items !copied;
    (* Report whether any *alive* item was actually acquired: returning true
       on a merely non-empty (dead) local LSM would let a caller's
       spy-and-retry loop spin forever on an exhausted queue. *)
    !copied > 0

  (** Detach and return this LSM's blocks, leaving it empty.  Requires
      exclusive access (no concurrent owner operations); see
      {!Klsm.meld}. *)
  let steal_all t =
    let n = B.get t.size in
    let acc = ref [] in
    B.set t.size 0;
    for i = n - 1 downto 0 do
      (match B.get t.blocks.(i) with
      | Some b -> acc := b :: !acc
      | None -> ());
      B.set t.blocks.(i) None
    done;
    !acc

  (** Iterate over all (possibly deleted) items; tests only. *)
  let iter_items t ~f =
    let n = B.get t.size in
    for i = 0 to n - 1 do
      match B.get t.blocks.(i) with
      | Some b -> Block.iter ~f b
      | None -> ()
    done

  (** Invariants for tests: strictly decreasing levels among live slots. *)
  let check_invariants t =
    let n = B.get t.size in
    let last_level = ref max_int in
    for i = 0 to n - 1 do
      match B.get t.blocks.(i) with
      | None -> failwith "Dist_lsm: null block within size"
      | Some b ->
          Block.check_invariants b;
          if Block.level b >= !last_level then
            failwith "Dist_lsm: levels not strictly decreasing";
          last_level := Block.level b
    done
end
